package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"smartssd/internal/device"
	"smartssd/internal/fault"
	"smartssd/internal/ftl"
	"smartssd/internal/nand"
	"smartssd/internal/txn"
	"smartssd/internal/wal"
)

// FaultReport is the availability side of a run's measurement: what
// went wrong, what the engine did about it, and what it cost. All
// fields are zero on a fault-free run.
type FaultReport struct {
	// DeviceAttempts counts pushdown executions tried (first attempt
	// included); zero when the query never went to the device.
	DeviceAttempts int
	// BackoffWait is the virtual time spent backing off between device
	// retries; it is included in the run's Elapsed.
	BackoffWait time.Duration
	// TimeoutWait is the virtual time the host spent waiting on hung
	// GETs before its watchdog fired; included in Elapsed.
	TimeoutWait time.Duration
	// HostFallback reports that the device path was abandoned and the
	// host re-ran the query from the block interface.
	HostFallback bool
	// FallbackReason classifies the fault that forced the fallback
	// ("session-abort", "get-timeout", "device-failed", "grant-denied",
	// "uncorrectable-read"); empty when no fallback happened.
	FallbackReason string

	// FTL reliability events during the run.
	ReadRetries        int64
	RecoveredReads     int64
	UncorrectableReads int64
	RemappedPrograms   int64
	GrownBadBlocks     int64

	// Runtime/controller injected events during the run.
	SessionAborts  int64
	GrantDenials   int64
	GetTimeouts    int64
	DeviceFailures int64
	LatencySpikes  int64
	DMAStalls      int64
}

// Any reports whether the run saw any fault or recovery action. A
// single clean device attempt does not count.
func (f FaultReport) Any() bool {
	clean := FaultReport{DeviceAttempts: f.DeviceAttempts}
	return f != clean || f.DeviceAttempts > 1
}

// String renders the non-zero part of the report for CLI output.
func (f FaultReport) String() string {
	var parts []string
	add := func(format string, args ...interface{}) {
		parts = append(parts, fmt.Sprintf(format, args...))
	}
	if f.DeviceAttempts > 1 {
		add("device attempts %d", f.DeviceAttempts)
	}
	if f.HostFallback {
		add("host fallback (%s)", f.FallbackReason)
	}
	if f.BackoffWait > 0 {
		add("backoff %v", f.BackoffWait)
	}
	if f.TimeoutWait > 0 {
		add("timeout wait %v", f.TimeoutWait)
	}
	if f.ReadRetries > 0 {
		add("read retries %d (%d recovered)", f.ReadRetries, f.RecoveredReads)
	}
	if f.UncorrectableReads > 0 {
		add("uncorrectable reads %d", f.UncorrectableReads)
	}
	if f.RemappedPrograms > 0 {
		add("remapped programs %d", f.RemappedPrograms)
	}
	if f.GrownBadBlocks > 0 {
		add("grown bad blocks %d", f.GrownBadBlocks)
	}
	if f.SessionAborts > 0 {
		add("session aborts %d", f.SessionAborts)
	}
	if f.GrantDenials > 0 {
		add("grant denials %d", f.GrantDenials)
	}
	if f.GetTimeouts > 0 {
		add("get timeouts %d", f.GetTimeouts)
	}
	if f.DeviceFailures > 0 {
		add("device failures %d", f.DeviceFailures)
	}
	if f.LatencySpikes > 0 {
		add("latency spikes %d", f.LatencySpikes)
	}
	if f.DMAStalls > 0 {
		add("dma stalls %d", f.DMAStalls)
	}
	if len(parts) == 0 {
		return "no faults"
	}
	return strings.Join(parts, ", ")
}

// isDeviceFault classifies errors the degradation ladder may mask:
// injected reliability events whose correct response is retry, then
// host fallback (or, in a cluster, replica failover). Anything else —
// invalid queries, unknown tables, genuine bugs — must surface.
func isDeviceFault(err error) bool {
	return errors.Is(err, device.ErrSessionAborted) ||
		errors.Is(err, device.ErrDeviceTimeout) ||
		errors.Is(err, device.ErrDeviceFailed) ||
		errors.Is(err, device.ErrGrantDenied) ||
		errors.Is(err, nand.ErrUncorrectable)
}

// faultReason maps a device fault to its FallbackReason label.
func faultReason(err error) string {
	switch {
	case errors.Is(err, device.ErrSessionAborted):
		return "session-abort"
	case errors.Is(err, device.ErrDeviceTimeout):
		return "get-timeout"
	case errors.Is(err, device.ErrDeviceFailed):
		return "device-failed"
	case errors.Is(err, device.ErrGrantDenied):
		return "grant-denied"
	case errors.Is(err, nand.ErrUncorrectable):
		return "uncorrectable-read"
	default:
		return "device-error"
	}
}

// FaultClass classifies err for callers outside the engine (the query
// service's HTTP error bodies): device faults map to their
// FallbackReason label, a fault.ErrDeadlineExceeded maps to
// "get-timeout" (a deadline is the host-side form of a hung GET), and
// anything else — including nil — maps to "".
func FaultClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, fault.ErrDeadlineExceeded):
		return "get-timeout"
	case errors.Is(err, wal.ErrPowerLost):
		return "power-lost"
	case errors.Is(err, wal.ErrTornWrite):
		return "torn-write"
	case errors.Is(err, wal.ErrCorruptRecord):
		return "corrupt-log"
	case errors.Is(err, txn.ErrWriteConflict):
		return "write-conflict"
	case isDeviceFault(err):
		return faultReason(err)
	default:
		return ""
	}
}

// faultWindow snapshots the SSD's reliability counters so a run can
// report exactly the events it caused.
type faultWindow struct {
	ftl ftl.Stats
	inj fault.Stats
}

func (e *Engine) faultWindow() faultWindow {
	return faultWindow{ftl: e.ssd.FTLStats(), inj: e.ssd.FaultStats()}
}

// diff fills rep's counter fields with the events since the window was
// taken and returns the extra virtual time hosts spent on hung GETs.
func (w faultWindow) diff(e *Engine, rep *FaultReport) time.Duration {
	fa, ia := e.ssd.FTLStats(), e.ssd.FaultStats()
	rep.ReadRetries = fa.ReadRetries - w.ftl.ReadRetries
	rep.RecoveredReads = fa.RecoveredReads - w.ftl.RecoveredReads
	rep.UncorrectableReads = fa.UncorrectableReads - w.ftl.UncorrectableReads
	rep.RemappedPrograms = fa.RemappedPrograms - w.ftl.RemappedPrograms
	rep.GrownBadBlocks = fa.GrownBadBlocks - w.ftl.GrownBadBlocks
	rep.SessionAborts = ia.SessionAborts - w.inj.SessionAborts
	rep.GrantDenials = ia.GrantDenials - w.inj.GrantDenials
	rep.GetTimeouts = ia.GetTimeouts - w.inj.GetTimeouts
	rep.DeviceFailures = ia.DeviceFailures - w.inj.DeviceFailures
	rep.LatencySpikes = ia.LatencySpikes - w.inj.LatencySpikes
	rep.DMAStalls = ia.DMAStalls - w.inj.DMAStalls
	rep.TimeoutWait = time.Duration(ia.TimeoutDelay - w.inj.TimeoutDelay)
	return rep.TimeoutWait
}

// ErrPartialResult marks a cluster run that lost at least one
// partition: a device failed and no replica could stand in. Use
// errors.Is(err, ErrPartialResult) to detect it and errors.As with
// *PartialResultError to see which workers were lost.
var ErrPartialResult = errors.New("core: partial result")

// PartialResultError reports the workers whose partitions are missing
// from a cluster result.
type PartialResultError struct {
	// Failed lists the worker indexes whose partitions are absent.
	Failed []int
	// Cause is the last device fault seen on a failed worker.
	Cause error
}

func (e *PartialResultError) Error() string {
	return fmt.Sprintf("core: partial result: workers %v failed without replicas: %v",
		e.Failed, e.Cause)
}

// Unwrap exposes the underlying device fault to errors.Is/As.
func (e *PartialResultError) Unwrap() error { return e.Cause }

// Is makes errors.Is(err, ErrPartialResult) match.
func (e *PartialResultError) Is(target error) bool { return target == ErrPartialResult }
