package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"smartssd/internal/device"
	"smartssd/internal/expr"
	"smartssd/internal/heap"
	"smartssd/internal/page"
	"smartssd/internal/plan"
	"smartssd/internal/schema"
	"smartssd/internal/ssd"
	"smartssd/internal/txn"
	"smartssd/internal/wal"
)

// Cluster realizes the end of the paper's design spectrum (§4.3): "the
// host machine could simply be the coordinator that stages computation
// across an array of Smart SSDs, making the system look like a parallel
// DBMS with the master node being the host server, and the worker nodes
// ... being the Smart SSDs."
//
// Tables are horizontally partitioned round-robin across the devices;
// queries run as one in-device program per partition, in parallel
// (devices have independent timelines), and the host merges partial
// results: concatenation for projections, algebraic combination for
// aggregates.
//
// Concurrency contract. A Cluster is safe for concurrent use: Run,
// RunRouted, CreateTable, Load, Replicate, SetReplication, and
// ResetTiming serialize on an internal mutex. The simulated devices
// themselves are single-timeline state machines (every sim.Server
// mutates shared clock and counter state), so two queries can never
// execute on one cluster at the same instant — the mutex makes each
// Run atomic, exactly as if the calls had arrived in some serial
// order. Callers that need true parallel execution across sessions run
// each session on its own Engine.Clone (see internal/serve); the
// cluster is the shared, partitioned backend. Accessors that return
// internal devices (Device) hand out live simulator state: do not
// drive them while another goroutine may be inside Run.
type Cluster struct {
	// mu serializes every method that touches device timelines or the
	// catalog. Without it, two concurrent Run calls interleave on the
	// same sim clocks and the run becomes schedule-dependent (a -race
	// regression test pins this: see TestClusterConcurrentRunsAreSafe).
	mu sync.Mutex

	devices  []*ssd.Device
	runtimes []*device.Runtime
	allocs   []heap.Allocator
	tables   map[string][]*heap.File
	// replicas is how many devices hold each partition's data (1 = no
	// redundancy). Partition i's extra copies chain onto devices
	// (i+1)%n .. (i+replicas-1)%n.
	replicas int
	// replicaFiles[name][i][j] is partition i's j'th extra copy,
	// resident on device (i+1+j)%n.
	replicaFiles map[string][][]*heap.File
	// stats holds per-table column ranges observed during Load and
	// Replicate (see stats.go); the SQL planner's selectivity estimator
	// reads them through TableStats.
	stats map[string][]ColumnStats

	// Durability layer: a coordinator write-ahead log on device 0,
	// activated lazily by the first Update (see cluster_update.go).
	walLog *wal.Log
	txns   *txn.Manager
	// dataWrites counts guarded data-page writes across all copies.
	dataWrites uint64
}

// NewCluster builds n identical Smart SSDs from params. When params
// enables fault injection, each worker gets an independent fault
// stream (the configured seed offset by the worker index), so failures
// land on different devices rather than striking all workers in
// lockstep.
func NewCluster(n int, params ssd.Params, cost device.CostModel) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: cluster needs at least one device, got %d", n)
	}
	c := &Cluster{
		allocs:       make([]heap.Allocator, n),
		tables:       make(map[string][]*heap.File),
		replicas:     1,
		replicaFiles: make(map[string][][]*heap.File),
		stats:        make(map[string][]ColumnStats),
	}
	for i := 0; i < n; i++ {
		p := params
		if p.Fault.Enabled() {
			p.Fault.Seed += int64(i) * 1_000_003
		}
		d, err := ssd.New(p)
		if err != nil {
			return nil, err
		}
		c.devices = append(c.devices, d)
		c.runtimes = append(c.runtimes, device.NewRuntime(d, cost))
	}
	return c, nil
}

// SetReplication makes every partition created afterwards keep k total
// copies (its primary plus k-1 chained replicas on the following
// devices). Must be called before CreateTable for tables that need
// failover; k is clamped to [1, Devices()].
func (c *Cluster) SetReplication(k int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if k < 1 {
		k = 1
	}
	if k > len(c.devices) {
		k = len(c.devices)
	}
	c.replicas = k
}

// Replication reports the configured copies per partition.
func (c *Cluster) Replication() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replicas
}

// Devices reports the worker count.
func (c *Cluster) Devices() int { return len(c.devices) }

// Device reports worker i's device.
func (c *Cluster) Device(i int) *ssd.Device { return c.devices[i] }

// ResetTiming zeroes every device's timing state and protocol phase
// counters (data preserved). The serving layer calls this before each
// session's cluster run so a session's Elapsed measures that session
// alone, independent of what ran before it — the cluster analogue of
// the engine's cold-run methodology.
func (c *Cluster) ResetTiming() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resetTimingLocked()
}

func (c *Cluster) resetTimingLocked() {
	for i, d := range c.devices {
		d.ResetTiming()
		c.runtimes[i].ResetPhases()
	}
}

// Schema reports the named table's row schema.
func (c *Cluster) Schema(name string) (*schema.Schema, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	files, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return files[0].Schema(), nil
}

// TableNames lists the cluster's tables sorted by name.
func (c *Cluster) TableNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.tables))
	for name := range c.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CreateTable creates one partition of the named table on every device.
func (c *Cluster) CreateTable(name string, s *schema.Schema, l page.Layout, maxPagesPerDevice int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[name]; dup {
		return fmt.Errorf("core: cluster table %q already exists", name)
	}
	files := make([]*heap.File, len(c.devices))
	for i, d := range c.devices {
		f, err := heap.Create(fmt.Sprintf("%s.p%d", name, i), d, &c.allocs[i], s, l, maxPagesPerDevice)
		if err != nil {
			return err
		}
		files[i] = f
	}
	c.tables[name] = files
	if c.replicas > 1 {
		reps := make([][]*heap.File, len(c.devices))
		for i := range c.devices {
			for j := 0; j < c.replicas-1; j++ {
				alt := (i + 1 + j) % len(c.devices)
				f, err := heap.Create(fmt.Sprintf("%s.p%d.r%d", name, i, j+1),
					c.devices[alt], &c.allocs[alt], s, l, maxPagesPerDevice)
				if err != nil {
					return err
				}
				reps[i] = append(reps[i], f)
			}
		}
		c.replicaFiles[name] = reps
	}
	return nil
}

// Load distributes generated tuples round-robin across the table's
// partitions, then resets all device timing.
func (c *Cluster) Load(name string, next func() (schema.Tuple, bool)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	files, ok := c.tables[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	apps := make([]*heap.Appender, len(files))
	for i, f := range files {
		apps[i] = f.NewAppender()
	}
	// Replica appenders mirror every tuple of partition p to its chained
	// copies (empty when replication is off).
	reps := c.replicaFiles[name]
	repApps := make([][]*heap.Appender, len(files))
	for p := range reps {
		for _, rf := range reps[p] {
			repApps[p] = append(repApps[p], rf.NewAppender())
		}
	}
	acc := newStatsAccumulator(files[0].Schema(), c.stats[name])
	i := 0
	for {
		t, ok := next()
		if !ok {
			break
		}
		acc.observe(t)
		p := i % len(apps)
		if err := apps[p].Append(t); err != nil {
			return err
		}
		for _, ra := range repApps[p] {
			if err := ra.Append(t); err != nil {
				return err
			}
		}
		i++
	}
	for _, app := range apps {
		if err := app.Close(); err != nil {
			return err
		}
	}
	for _, pa := range repApps {
		for _, ra := range pa {
			if err := ra.Close(); err != nil {
				return err
			}
		}
	}
	c.stats[name] = acc.cols
	for _, d := range c.devices {
		d.ResetTiming()
	}
	return nil
}

// Replicate copies generated tuples to every partition in full — for
// small build-side tables every worker needs locally (the parallel-DBMS
// broadcast join).
func (c *Cluster) Replicate(name string, gen func() func() (schema.Tuple, bool)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	files, ok := c.tables[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	// Every copy appends the same stream, so stats fold only the first.
	acc := newStatsAccumulator(files[0].Schema(), c.stats[name])
	for fi, f := range files {
		app := f.NewAppender()
		next := gen()
		for {
			t, ok := next()
			if !ok {
				break
			}
			if fi == 0 {
				acc.observe(t)
			}
			if err := app.Append(t); err != nil {
				return err
			}
		}
		if err := app.Close(); err != nil {
			return err
		}
	}
	c.stats[name] = acc.cols
	for _, d := range c.devices {
		d.ResetTiming()
	}
	return nil
}

// ClusterResult is a merged parallel run.
type ClusterResult struct {
	// Tag carries the caller's label for this run (e.g. the serving
	// session that issued it); the cluster never sets it.
	Tag  string
	Rows []schema.Tuple
	// Elapsed is the slowest worker's completion (workers run in
	// parallel on independent devices).
	Elapsed time.Duration
	// PerDevice holds each worker's completion time.
	PerDevice []time.Duration
	// Attempts counts every in-device execution the run issued: one per
	// worker's primary partition plus one per replica tried during
	// failover. With nothing faulted it equals Devices().
	Attempts int
	// Failovers counts partitions that were re-executed on a replica
	// after their primary device faulted.
	Failovers int
	// FailoverReasons records, per worker index, why that worker's
	// primary execution was abandoned (the fault class of its error, as
	// in FaultReport.FallbackReason). Nil when no primary faulted.
	FailoverReasons map[int]string
	// FailedWorkers lists workers whose partitions were lost entirely
	// (primary faulted and no replica survived); when non-empty the run
	// also returns a *PartialResultError.
	FailedWorkers []int
	// Executed records, per partition, the device index that produced
	// the partition's rows (-1 for lost partitions). Without routing it
	// is the identity mapping unless failover moved a partition.
	Executed []int
}

// ClusterQuery is a pushdown query over a partitioned table; fields
// mirror QuerySpec with table names resolved against the cluster.
type ClusterQuery struct {
	Table  string
	Join   *JoinClause // build table must be replicated
	Filter expr.Expr
	Output []plan.OutputCol
	Aggs   []plan.AggSpec
	// GroupBy lists combined-row column indexes to group the aggregates
	// by. Each worker computes its partition's groups in-device; the
	// host merges partial groups by key and emits them sorted by the
	// group-by values, so merged output is independent of partition
	// count and routing.
	GroupBy []int
}

// RouteFunc picks which copy of a partition executes. It receives the
// partition index and the candidate device indexes holding a copy —
// the primary first, then its chained replicas — and returns the
// device to try first; the remaining candidates stay in chained order
// as the failover ladder. Returning a device not in candidates falls
// back to the primary. Every copy holds identical data, so routing
// moves load between devices without changing the merged rows.
type RouteFunc func(part int, candidates []int) int

// Run executes the query on every worker and merges the results.
func (c *Cluster) Run(q ClusterQuery) (*ClusterResult, error) {
	return c.RunRouted(q, nil)
}

// RunRouted is Run with replica routing: route (when non-nil) picks
// the first device tried for each partition among those holding a
// copy. The serving layer uses it to spread read sessions across
// replicas least-loaded-first with a deterministic tie-break by device
// index.
func (c *Cluster) RunRouted(q ClusterQuery, route RouteFunc) (*ClusterResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	files, ok := c.tables[q.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, q.Table)
	}
	var buildFiles []*heap.File
	if q.Join != nil {
		buildFiles, ok = c.tables[q.Join.BuildTable]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoTable, q.Join.BuildTable)
		}
	}

	lower := func(f *heap.File, w int) device.Query {
		return lowerPartition(q, f, w, buildFiles)
	}
	groupKinds, err := groupByKinds(q, files, buildFiles)
	if err != nil {
		return nil, err
	}

	res := &ClusterResult{
		PerDevice: make([]time.Duration, len(c.devices)),
		Executed:  make([]int, len(c.devices)),
	}
	var partials [][]schema.Tuple
	var lastCause error
	reps := c.replicaFiles[q.Table]
	for i := range c.devices {
		// The candidate ladder: device and file per copy, primary first.
		devs := []int{i}
		copies := []*heap.File{files[i]}
		if len(reps) > i {
			for j, rf := range reps[i] {
				devs = append(devs, (i+1+j)%len(c.devices))
				copies = append(copies, rf)
			}
		}
		// Rotate the chosen candidate to the front; the rest keep their
		// chained order behind it as the failover ladder.
		if route != nil {
			if want := route(i, append([]int(nil), devs...)); want != devs[0] {
				for pos := 1; pos < len(devs); pos++ {
					if devs[pos] == want {
						devs[0], devs[pos] = devs[pos], devs[0]
						copies[0], copies[pos] = copies[pos], copies[0]
						break
					}
				}
			}
		}

		res.Executed[i] = -1
		for attempt := 0; attempt < len(devs); attempt++ {
			dev, f := devs[attempt], copies[attempt]
			res.Attempts++
			rows, end, err := c.runtimes[dev].RunQuery(lower(f, dev))
			if err == nil {
				if attempt > 0 {
					res.Failovers++
				}
				partials = append(partials, rows)
				res.PerDevice[i] = end
				res.Executed[i] = dev
				if end > res.Elapsed {
					res.Elapsed = end
				}
				break
			}
			if !isDeviceFault(err) {
				return nil, fmt.Errorf("core: worker %d on device %d: %w", i, dev, err)
			}
			lastCause = fmt.Errorf("core: worker %d on device %d: %w", i, dev, err)
			if attempt == 0 {
				if res.FailoverReasons == nil {
					res.FailoverReasons = make(map[int]string)
				}
				res.FailoverReasons[i] = faultReason(err)
			}
		}
		if res.Executed[i] < 0 {
			res.FailedWorkers = append(res.FailedWorkers, i)
		}
	}

	switch {
	case len(q.Aggs) > 0 && len(q.GroupBy) > 0:
		res.Rows = mergeGroupedAggs(q.Aggs, len(q.GroupBy), groupKinds, partials)
	case len(q.Aggs) > 0:
		res.Rows = []schema.Tuple{mergeAggs(q.Aggs, partials)}
	default:
		for _, p := range partials {
			res.Rows = append(res.Rows, p...)
		}
	}
	if len(res.FailedWorkers) > 0 {
		return res, &PartialResultError{Failed: res.FailedWorkers, Cause: lastCause}
	}
	return res, nil
}

// lowerPartition builds the in-device program for one partition file
// running on worker w (the build side uses w's local replicated copy).
func lowerPartition(q ClusterQuery, f *heap.File, w int, buildFiles []*heap.File) device.Query {
	dq := device.Query{
		Table:   device.RefOf(f),
		Filter:  q.Filter,
		Output:  q.Output,
		Aggs:    q.Aggs,
		GroupBy: q.GroupBy,
	}
	if q.Join != nil {
		bf := buildFiles[w]
		dq.Join = &device.JoinSpec{
			Build:    device.RefOf(bf),
			BuildKey: bf.Schema().MustColumnIndex(q.Join.BuildKey),
			ProbeKey: f.Schema().MustColumnIndex(q.Join.ProbeKey),
		}
	}
	return dq
}

// groupByKinds resolves the group-by columns' kinds against the
// combined row (probe columns first, then the build table's), which
// the grouped merge needs to compare key values.
func groupByKinds(q ClusterQuery, files, buildFiles []*heap.File) ([]schema.Kind, error) {
	if len(q.GroupBy) == 0 {
		return nil, nil
	}
	ps := files[0].Schema()
	np := ps.NumColumns()
	kinds := make([]schema.Kind, 0, len(q.GroupBy))
	for _, g := range q.GroupBy {
		switch {
		case g >= 0 && g < np:
			kinds = append(kinds, ps.Column(g).Kind)
		case buildFiles != nil && g >= np && g-np < buildFiles[0].Schema().NumColumns():
			kinds = append(kinds, buildFiles[0].Schema().Column(g-np).Kind)
		default:
			return nil, fmt.Errorf("core: group-by column %d out of the combined row", g)
		}
	}
	return kinds, nil
}

// mergeGroupedAggs combines each worker's partial groups into the
// global grouped result: rows are keyed by their leading nGroup
// columns (the [group values..., agg values...] device output
// convention), partial groups with equal keys fold with the aggregate
// semantics of mergeAggs, and the merged rows come out sorted by the
// group-by values — a deterministic order independent of partition
// count, routing, and failover. Groups only exist where a partition
// matched rows, so Min/Max merge exactly here (no zero-row caveat).
func mergeGroupedAggs(aggs []plan.AggSpec, nGroup int, kinds []schema.Kind, partials [][]schema.Tuple) []schema.Tuple {
	var all []schema.Tuple
	for _, rows := range partials {
		all = append(all, rows...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		for g := 0; g < nGroup; g++ {
			if cv := schema.Compare(kinds[g], all[i][g], all[j][g]); cv != 0 {
				return cv < 0
			}
		}
		return false
	})
	var out []schema.Tuple
	for _, row := range all {
		if len(out) > 0 {
			last := out[len(out)-1]
			same := true
			for g := 0; g < nGroup; g++ {
				if schema.Compare(kinds[g], last[g], row[g]) != 0 {
					same = false
					break
				}
			}
			if same {
				for i, a := range aggs {
					k := nGroup + i
					switch a.Kind {
					case plan.Sum, plan.Count:
						last[k] = schema.IntVal(last[k].Int + row[k].Int)
					case plan.Min:
						if row[k].Int < last[k].Int {
							last[k] = row[k]
						}
					case plan.Max:
						if row[k].Int > last[k].Int {
							last[k] = row[k]
						}
					}
				}
				continue
			}
		}
		out = append(out, append(schema.Tuple(nil), row...))
	}
	return out
}

// Explain renders the cluster's execution plan for q — the partition
// fan-out, one partition's in-device program, and the host-side merge —
// without executing anything.
func (c *Cluster) Explain(q ClusterQuery) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	files, ok := c.tables[q.Table]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNoTable, q.Table)
	}
	var buildFiles []*heap.File
	if q.Join != nil {
		if buildFiles, ok = c.tables[q.Join.BuildTable]; !ok {
			return "", fmt.Errorf("%w: %q", ErrNoTable, q.Join.BuildTable)
		}
	}
	if _, err := groupByKinds(q, files, buildFiles); err != nil {
		return "", err
	}
	out := fmt.Sprintf("cluster plan: %d partitions of %s, one in-device program each\n",
		len(files), q.Table)
	out += "per-partition device plan:\n" + lowerPartition(q, files[0], 0, buildFiles).Explain()
	merge := "concatenate partition rows"
	switch {
	case len(q.Aggs) > 0 && len(q.GroupBy) > 0:
		merge = "merge partial groups by key, sorted by the group-by columns"
	case len(q.Aggs) > 0:
		merge = "combine partial aggregates (sums and counts add, mins and maxes fold)"
	}
	out += "merge: " + merge + "\n"
	return out, nil
}

// mergeAggs combines one scalar-aggregate row per worker into the
// global row: sums and counts add, mins and maxes fold.
//
// Caveat: a partition whose scan matched nothing still contributes a
// row of zeros (the scalar-aggregate-over-empty-input convention), so
// Min/Max merges are only exact when every partition matched at least
// one tuple; Sum and Count merge exactly always.
func mergeAggs(aggs []plan.AggSpec, partials [][]schema.Tuple) schema.Tuple {
	out := make(schema.Tuple, len(aggs))
	first := true
	for _, rows := range partials {
		if len(rows) == 0 {
			continue
		}
		row := rows[0]
		for i, a := range aggs {
			if first {
				out[i] = schema.IntVal(row[i].Int)
				continue
			}
			switch a.Kind {
			case plan.Sum, plan.Count:
				out[i] = schema.IntVal(out[i].Int + row[i].Int)
			case plan.Min:
				if row[i].Int < out[i].Int {
					out[i] = row[i]
				}
			case plan.Max:
				if row[i].Int > out[i].Int {
					out[i] = row[i]
				}
			}
		}
		first = false
	}
	return out
}
