package core

import (
	"errors"
	"fmt"

	"smartssd/internal/page"
	"smartssd/internal/txn"
	"smartssd/internal/wal"
)

// The engine's durability layer: a write-ahead log on a reserved
// region at the top of the SSD's logical address space, a transaction
// manager with MVCC staging, and ARIES-style redo recovery. All of it
// is lazily activated by the first Begin/Update, so read-only engines
// — and their goldens — are byte-identical to a build without it.

// ensureTxn activates the write-ahead log and transaction manager.
// Activation trims the log region (an engine clone inherits the
// original's mapped log pages, which describe the original's
// transactions, not the clone's) and fails if table extents have
// already grown into the region.
func (e *Engine) ensureTxn() error {
	if e.txns != nil {
		return nil
	}
	start, _ := wal.Region(e.ssd.CapacityPages())
	if used := e.ssdAlloc.Used(); used > start {
		return fmt.Errorf("core: WAL region starts at page %d but %d pages are allocated", start, used)
	}
	log, err := wal.Create(e.ssd, e.ssd.Injector())
	if err != nil {
		return err
	}
	e.walLog = log
	e.txns = txn.NewManager(log, e.resolveTxnTable)
	return nil
}

// resolveTxnTable adapts a catalogued table to the transaction layer.
func (e *Engine) resolveTxnTable(name string) (txn.Table, error) {
	t, err := e.Table(name)
	if err != nil {
		return txn.Table{}, err
	}
	f := t.File
	tab := txn.Table{
		Name:     name,
		Schema:   f.Schema(),
		Layout:   f.Layout(),
		StartLBA: f.StartLBA(),
		Pages:    f.Pages(),
	}
	switch t.Target {
	case OnSSD:
		tab.Dev = e.ssd
		tab.Pool = e.pool
		tab.Durable = true
	case OnHDD:
		if e.hdd == nil {
			return txn.Table{}, errors.New("core: HDD disabled in this engine")
		}
		// Same code path, no pool-coherence veto: HDD scans read from
		// the device, so commits are force-written there.
		tab.Dev = e.hdd
	}
	return tab, nil
}

// Begin starts a transaction. The first call activates the write-ahead
// log (see ensureTxn).
func (e *Engine) Begin() (*txn.Txn, error) {
	if err := e.ensureTxn(); err != nil {
		return nil, err
	}
	return e.txns.Begin(), nil
}

// Txns exposes the transaction manager (nil until the first Begin),
// for group-commit callers.
func (e *Engine) Txns() *txn.Manager { return e.txns }

// WAL exposes the write-ahead log (nil until the first Begin).
func (e *Engine) WAL() *wal.Log { return e.walLog }

// DurableWrites reports how many guarded durable writes — WAL page
// writes plus data-page flushes — the engine has attempted. The
// power-cut sweep uses a fault-free run's count as the bound on
// meaningful cut points.
func (e *Engine) DurableWrites() uint64 {
	n := e.dataWrites
	if e.walLog != nil {
		n += e.walLog.Stats().PageWrites
	}
	return n
}

// RecoveryReport summarizes one crash recovery.
type RecoveryReport struct {
	// Committed lists recovered transaction ids in commit order.
	Committed []uint64
	// UpdatesApplied counts redo after-images installed.
	UpdatesApplied int
	// PagesRepaired counts distinct data pages rewritten.
	PagesRepaired int
	// LogPages counts valid log pages scanned.
	LogPages int64
	// TruncatedTail reports that a torn tail page (the power-cut
	// artifact) was discarded.
	TruncatedTail bool
}

// LastRecovery reports the most recent Recover result (nil if Recover
// never ran or found nothing).
func (e *Engine) LastRecovery() *RecoveryReport { return e.lastRecovery }

// Recover replays the write-ahead log: committed transactions' redo
// after-images are installed onto the device pages, the log is
// checkpointed, and a fresh transaction manager is adopted. LoadImage
// calls it automatically, so reloading a crashed engine's image yields
// exactly the committed-prefix state. Mid-log damage (wal.ErrTornWrite)
// and record corruption (wal.ErrCorruptRecord) surface as errors —
// they are never silently replayed.
//
// Recovery is idempotent: after-images are absolute, so replaying over
// pages that already carry them is harmless.
func (e *Engine) Recover() (*RecoveryReport, error) {
	e.ssd.Injector().RestorePower()
	log, rec, err := wal.Open(e.ssd, e.ssd.Injector())
	if err != nil {
		return nil, fmt.Errorf("core: recover: %w", err)
	}
	rep := &RecoveryReport{
		Committed:     rec.Committed,
		LogPages:      rec.ValidPages,
		TruncatedTail: rec.TruncatedTail,
	}
	if rec.ValidPages == 0 && !rec.TruncatedTail {
		// Nothing durable in the region: stay lazily deactivated so
		// read-only engines (and zero-update images) are untouched.
		e.lastRecovery = rep
		return rep, nil
	}

	// Install committed after-images in LSN order, batching per page.
	type pageKey struct {
		table string
		idx   uint32
	}
	repaired := make(map[pageKey][]byte)
	var order []pageKey
	for _, u := range rec.CommittedUpdates() {
		t, err := e.Table(u.Table)
		if err != nil {
			return nil, fmt.Errorf("core: recover: redo lsn %d: %w", u.LSN, err)
		}
		if int64(u.PageIdx) >= t.File.Pages() {
			return nil, fmt.Errorf("core: recover: redo lsn %d: page %d beyond %q (%d pages)",
				u.LSN, u.PageIdx, u.Table, t.File.Pages())
		}
		k := pageKey{u.Table, u.PageIdx}
		buf, ok := repaired[k]
		if !ok {
			lba := t.File.StartLBA() + int64(u.PageIdx)
			data, _, err := e.ssd.ReadPage(lba, 0)
			if err != nil {
				return nil, fmt.Errorf("core: recover: read page %d: %w", lba, err)
			}
			buf = append([]byte(nil), data...)
			repaired[k] = buf
			order = append(order, k)
		}
		if err := page.ReplaceTuple(t.File.Schema(), buf, int(u.Slot), u.Tuple); err != nil {
			return nil, fmt.Errorf("core: recover: redo lsn %d: %w", u.LSN, err)
		}
		rep.UpdatesApplied++
	}
	for _, k := range order {
		t, _ := e.Table(k.table)
		lba := t.File.StartLBA() + int64(k.idx)
		if err := e.ssd.RestorePage(lba, repaired[k]); err != nil {
			return nil, fmt.Errorf("core: recover: repair page %d: %w", lba, err)
		}
		rep.PagesRepaired++
	}

	// The redo set is on media: checkpoint the log and adopt it.
	if err := log.Reset(); err != nil {
		return nil, err
	}
	e.walLog = log
	e.txns = txn.NewManager(log, e.resolveTxnTable)
	// Cached pages may predate the repairs; recovery starts cold.
	e.pool.Clear()
	e.ResetTiming()
	e.lastRecovery = rep
	return rep, nil
}
