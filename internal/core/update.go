package core

import (
	"smartssd/internal/expr"
	"smartssd/internal/txn"
)

// SetClause assigns one column from an expression over the row's
// pre-update values. It is an alias of the transaction layer's clause
// so callers can stay at the core API.
type SetClause = txn.SetClause

// Update runs a single-statement transaction: begin, stage the SET
// clauses on rows matching filter, commit. For SSD-resident tables the
// commit is durable (WAL flush) before it acknowledges, and the
// modified pages become dirty host copies in the buffer pool — which
// makes the device's copies stale and (until FlushPool) vetoes
// pushdown over the table, exactly the coherence problem §4.3 of the
// paper discusses. HDD-resident tables take the same code path without
// the pool-coherence veto: their pages are force-written at commit
// (the HDD is never imaged, so it has no redo log to replay).
//
// The engine's query class has no update pushdown ("queries with any
// updates cannot be processed in the SSD without appropriate
// coordination with the DBMS transaction manager"), so Update always
// executes on the host. It reports the number of rows updated.
func (e *Engine) Update(table string, filter expr.Expr, sets []SetClause) (int64, error) {
	tx, err := e.Begin()
	if err != nil {
		return 0, err
	}
	n, err := tx.Update(table, filter, sets)
	if err != nil {
		tx.Abort()
		return 0, err
	}
	if _, err := tx.Commit(0); err != nil {
		return 0, err
	}
	return n, nil
}

// FlushPool writes all dirty buffer-pool pages back to the device,
// restoring coherence so the planner may push down again. With the
// write-ahead log active this is a checkpoint: once every data page is
// durable the log is reset (trimmed, epoch bumped).
func (e *Engine) FlushPool() error {
	if err := e.pool.FlushAll(); err != nil {
		return err
	}
	if e.walLog != nil {
		return e.walLog.Reset()
	}
	return nil
}
