package core

import (
	"errors"
	"fmt"

	"smartssd/internal/expr"
	"smartssd/internal/page"
	"smartssd/internal/schema"
)

// SetClause assigns one column from an expression over the row's
// pre-update values.
type SetClause struct {
	Column string
	E      expr.Expr
}

// Update applies an in-place UPDATE — SET clauses on rows matching
// filter — to an SSD-resident table, through the buffer pool: modified
// pages become dirty host copies, which makes the device's copies stale
// and (until FlushPool) vetoes pushdown over the table, exactly the
// coherence problem §4.3 of the paper discusses. It reports the number
// of rows updated.
//
// The engine's query class has no update pushdown ("queries with any
// updates cannot be processed in the SSD without appropriate
// coordination with the DBMS transaction manager"), so Update always
// executes on the host.
func (e *Engine) Update(table string, filter expr.Expr, sets []SetClause) (int64, error) {
	t, err := e.Table(table)
	if err != nil {
		return 0, err
	}
	if t.Target != OnSSD {
		return 0, errors.New("core: Update supports SSD-resident tables only")
	}
	if len(sets) == 0 {
		return 0, errors.New("core: Update without SET clauses")
	}
	s := t.File.Schema()
	setIdx := make([]int, len(sets))
	for i, c := range sets {
		idx := s.ColumnIndex(c.Column)
		if idx < 0 {
			return 0, fmt.Errorf("core: Update: no column %q in %q", c.Column, table)
		}
		setIdx[i] = idx
	}

	var updated int64
	builder := page.NewBuilder(s, t.File.Layout())
	var tup schema.Tuple
	for idx := int64(0); idx < t.File.Pages(); idx++ {
		lba := t.File.StartLBA() + idx

		// Pull the page through the buffer pool: cached copy if present,
		// device read otherwise.
		data, hit := e.pool.Get(lba)
		if !hit {
			devData, _, err := e.ssd.ReadPage(lba, 0)
			if err != nil {
				return updated, err
			}
			if err := e.pool.Put(lba, devData); err != nil {
				return updated, fmt.Errorf("core: Update: pool full: %w", err)
			}
			data, _ = e.pool.Get(lba)
			// Drop the extra pin from Put; the Get pin remains.
			if err := e.pool.Unpin(lba, false); err != nil {
				return updated, err
			}
		}

		r, err := page.NewReader(s, data)
		if err != nil {
			e.pool.Unpin(lba, false)
			return updated, fmt.Errorf("core: Update: page %d: %w", idx, err)
		}
		// First pass: does anything on this page match?
		match := false
		for i := 0; i < r.Count() && !match; i++ {
			if filter == nil || filter.Eval(pageRow{r, i}).Int != 0 {
				match = true
			}
		}
		if !match {
			e.pool.Unpin(lba, false)
			continue
		}

		// Rebuild the page with updated tuples.
		builder.Reset(r.PageNo())
		for i := 0; i < r.Count(); i++ {
			tup = r.Tuple(tup, i)
			if filter == nil || filter.Eval(pageRow{r, i}).Int != 0 {
				// Evaluate all SET expressions against pre-update values
				// before assigning any (SQL UPDATE semantics).
				vals := make([]schema.Value, len(sets))
				row := expr.TupleRow(tup)
				for si, c := range sets {
					vals[si] = c.E.Eval(row)
				}
				out := cloneRow(tup)
				for si, idx := range setIdx {
					out[idx] = vals[si]
				}
				tup = out
				updated++
			}
			if !builder.Append(tup) {
				e.pool.Unpin(lba, false)
				return updated, fmt.Errorf("core: Update: rebuilt page %d overflowed", idx)
			}
		}
		copy(data, builder.Finish())
		if err := e.pool.Unpin(lba, true); err != nil { // dirty
			return updated, err
		}
	}
	return updated, nil
}

// FlushPool writes all dirty buffer-pool pages back to the device,
// restoring coherence so the planner may push down again.
func (e *Engine) FlushPool() error { return e.pool.FlushAll() }

// pageRow adapts a tuple inside a bound page to expr.Row.
type pageRow struct {
	r *page.Reader
	i int
}

func (p pageRow) Col(c int) schema.Value { return p.r.Column(p.i, c) }

func cloneRow(t schema.Tuple) schema.Tuple {
	out := make(schema.Tuple, len(t))
	for i, v := range t {
		if v.Bytes != nil {
			v.Bytes = append([]byte(nil), v.Bytes...)
		}
		out[i] = v
	}
	return out
}
