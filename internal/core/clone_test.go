package core

import (
	"fmt"
	"strings"
	"testing"

	"smartssd/internal/expr"
	"smartssd/internal/fault"
	"smartssd/internal/page"
	"smartssd/internal/plan"
	"smartssd/internal/schema"
)

// resultFingerprint renders every observable field of a Result —
// timing, energy, placement, bottleneck, stage and resource breakdowns,
// traffic counters, fault report, and the full row set — so two runs
// compare byte-for-byte, not just answer-for-answer.
func resultFingerprint(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "elapsed=%v placement=%v decision=%+v bottleneck=%s\n",
		r.Elapsed, r.Placement, r.Decision, r.Bottleneck)
	fmt.Fprintf(&b, "energy=%+v hybrid=%v flash=%d link=%d host=%+v\n",
		r.Energy, r.HybridDeviceFraction, r.FlashBytesRead, r.LinkBytesOut, r.HostStats)
	fmt.Fprintf(&b, "stages=%+v\nfaults=%+v\n", r.Stages, r.Faults)
	b.WriteString(r.Resources.Render())
	for _, row := range r.Rows {
		for c, v := range row {
			fmt.Fprintf(&b, "%d:%d:%q ", c, v.Int, v.Bytes)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func mustRun(t *testing.T, e *Engine, spec QuerySpec, mode Mode) *Result {
	t.Helper()
	res, err := e.Run(spec, mode)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func joinAggSpec() QuerySpec {
	fact := widePaddedSchema()
	np := fact.NumColumns()
	return QuerySpec{
		Table:  "fact",
		Join:   &JoinClause{BuildTable: "dim", BuildKey: "d_key", ProbeKey: "grp"},
		Filter: expr.Cmp{Op: expr.LT, L: expr.ColRef(fact, "val"), R: expr.IntConst(50)},
		Aggs: []plan.AggSpec{
			{Kind: plan.Sum, E: expr.Col{Index: np + 1, Name: "d_payload", K: schema.Int32}, Name: "sum_payload"},
			{Kind: plan.Count, Name: "cnt"},
		},
		EstSelectivity: 0.5,
	}
}

// TestEngineEquivalence is the contract the runner harness stands on:
// a cold run on Engine.Clone() is byte-identical — timing, energy,
// utilization, rows, everything — to the same run on the original
// engine, before and after other runs, and clones never disturb the
// engine they came from.
func TestEngineEquivalence(t *testing.T) {
	build := func(t *testing.T) *Engine {
		e := newEngine(t)
		loadFact(t, e, page.PAX, 20000, OnSSD)
		loadDim(t, e, 40)
		return e
	}
	specs := []struct {
		name string
		spec QuerySpec
		mode Mode
	}{
		{"selection-host", selectiveSpec(), ForceHost},
		{"selection-device", selectiveSpec(), ForceDevice},
		{"join-agg-host", joinAggSpec(), ForceHost},
		{"join-agg-device", joinAggSpec(), ForceDevice},
		{"auto", selectiveSpec(), Auto},
	}

	e := build(t)
	// Clone taken before the engine has run anything.
	fresh, err := e.Clone()
	if err != nil {
		t.Fatal(err)
	}

	for _, s := range specs {
		s := s
		t.Run(s.name, func(t *testing.T) {
			want := resultFingerprint(mustRun(t, e, s.spec, s.mode))

			// Clone-before-runs reproduces the run exactly.
			if got := resultFingerprint(mustRun(t, fresh, s.spec, s.mode)); got != want {
				t.Fatalf("pre-run clone diverged:\n--- original ---\n%s--- clone ---\n%s", want, got)
			}
			// Clone-after-runs too: no run state leaks into a clone.
			later, err := e.Clone()
			if err != nil {
				t.Fatal(err)
			}
			if got := resultFingerprint(mustRun(t, later, s.spec, s.mode)); got != want {
				t.Fatalf("post-run clone diverged:\n--- original ---\n%s--- clone ---\n%s", want, got)
			}
			// And running on clones never disturbed the original.
			if got := resultFingerprint(mustRun(t, e, s.spec, s.mode)); got != want {
				t.Fatalf("original drifted after clone runs:\n--- before ---\n%s--- after ---\n%s", want, got)
			}
		})
	}
}

// TestEngineEquivalenceUnderFaults pins the sharpest part of the clone
// contract: a clone holds the fault injector's exact stream position,
// so it replays the identical fault sequence — retries, fallbacks, and
// all — that the original engine would have drawn.
func TestEngineEquivalenceUnderFaults(t *testing.T) {
	build := func(t *testing.T) *Engine {
		e := newFaultyEngine(t, fault.Config{
			Seed:             7,
			ReadErrorRate:    0.01,
			LatencySpikeRate: 0.005,
			SessionAbortRate: 0.3,
		})
		loadFact(t, e, page.PAX, 20000, OnSSD)
		loadDim(t, e, 40)
		return e
	}
	a, b := build(t), build(t)
	// Advance b's injector identically to a's before cloning: both
	// engines drew the same stream during load, so their clones must
	// agree draw-for-draw from here on.
	ca, err := a.Clone()
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []QuerySpec{selectiveSpec(), joinAggSpec()} {
		want := resultFingerprint(mustRun(t, b, spec, ForceDevice))
		if got := resultFingerprint(mustRun(t, ca, spec, ForceDevice)); got != want {
			t.Fatalf("faulted clone diverged from identically built engine:\n--- engine ---\n%s--- clone ---\n%s", want, got)
		}
	}
}

// TestCloneConcurrentRuns exercises the sharing design under -race:
// many clones of one loaded engine running simultaneously, all reading
// the same shared NAND page buffers, must produce identical results.
func TestCloneConcurrentRuns(t *testing.T) {
	e := newEngine(t)
	loadFact(t, e, page.PAX, 20000, OnSSD)
	loadDim(t, e, 40)
	spec := joinAggSpec()
	want := resultFingerprint(mustRun(t, e, spec, ForceDevice))

	const n = 8
	results := make([]string, n)
	errs := make([]error, n)
	done := make(chan int)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer func() { done <- i }()
			c, err := e.Clone()
			if err != nil {
				errs[i] = err
				return
			}
			res, err := c.Run(spec, ForceDevice)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = resultFingerprint(res)
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("clone %d: %v", i, errs[i])
		}
		if results[i] != want {
			t.Fatalf("clone %d diverged:\n--- original ---\n%s--- clone ---\n%s", i, want, results[i])
		}
	}
}
