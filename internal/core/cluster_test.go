package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"smartssd/internal/device"
	"smartssd/internal/expr"
	"smartssd/internal/page"
	"smartssd/internal/plan"
	"smartssd/internal/schema"
)

// lineitemSchema is the TPC-H lineitem slice the serving layer exposes;
// the property test runs randomly generated Q6-style predicates over it.
func lineitemSchema() *schema.Schema {
	return schema.New(
		schema.Column{Name: "l_quantity", Kind: schema.Int32},
		schema.Column{Name: "l_extendedprice", Kind: schema.Int32},
		schema.Column{Name: "l_discount", Kind: schema.Int32},
		schema.Column{Name: "l_shipdate", Kind: schema.Date},
	)
}

// genLineitems materializes rows once so the single engine and the
// cluster load byte-identical data.
func genLineitems(rng *rand.Rand, n int) []schema.Tuple {
	rows := make([]schema.Tuple, n)
	for i := range rows {
		rows[i] = schema.Tuple{
			schema.IntVal(int64(1 + rng.Intn(50))),
			schema.IntVal(int64(900 + rng.Intn(100000))),
			schema.IntVal(int64(rng.Intn(11))),
			schema.DateVal(1992+rng.Intn(7), time.Month(1+rng.Intn(12)), 1+rng.Intn(28)),
		}
	}
	return rows
}

func sliceFeeder(rows []schema.Tuple) func() (schema.Tuple, bool) {
	i := 0
	return func() (schema.Tuple, bool) {
		if i >= len(rows) {
			return nil, false
		}
		t := rows[i]
		i++
		return t, true
	}
}

// TestClusterPropertyMatchesSingleEngine is the seeded property test:
// for random shard counts n in [1,8], replication k in [1,n], and random
// Q6-style predicates (arriving as text through expr.ParsePredicate,
// the same path the query service uses), the cluster's merged Sum/Count
// aggregate equals a single engine's device run bit for bit — including
// when the predicate matches nothing on some or all partitions. Routing
// every partition to a random replica must not change the answer either,
// since replicas hold identical data.
func TestClusterPropertyMatchesSingleEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(0xC0FFEE))
	s := lineitemSchema()
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(8)
		k := 1 + rng.Intn(n)
		rows := genLineitems(rng, 2000+rng.Intn(4000))

		yr := 1992 + rng.Intn(6)
		lo := rng.Intn(9)
		hi := lo + 1 + rng.Intn(10-lo)
		src := fmt.Sprintf(
			"l_shipdate >= DATE '%d-01-01' AND l_shipdate < DATE '%d-01-01'"+
				" AND l_discount >= %d AND l_discount <= %d AND l_quantity < %d",
			yr, yr+1, lo, hi, 10+rng.Intn(41))
		filter, err := expr.ParsePredicate(s, src)
		if err != nil {
			t.Fatalf("trial %d: ParsePredicate(%q): %v", trial, src, err)
		}
		revenue, err := expr.Parse(s, "l_extendedprice * l_discount")
		if err != nil {
			t.Fatal(err)
		}
		aggs := []plan.AggSpec{
			{Kind: plan.Sum, E: revenue, Name: "revenue"},
			{Kind: plan.Count, Name: "cnt"},
		}

		e, err := New(Config{SSD: smallSSD()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.CreateTable("lineitem", s, page.PAX, 512, OnSSD); err != nil {
			t.Fatal(err)
		}
		if err := e.Load("lineitem", sliceFeeder(rows)); err != nil {
			t.Fatal(err)
		}
		single, err := e.Run(QuerySpec{
			Table: "lineitem", Filter: filter, Aggs: aggs, EstSelectivity: 0.1,
		}, ForceDevice)
		if err != nil {
			t.Fatal(err)
		}

		cl, err := NewCluster(n, smallSSD(), device.DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		cl.SetReplication(k)
		if err := cl.CreateTable("lineitem", s, page.PAX, 512); err != nil {
			t.Fatal(err)
		}
		if err := cl.Load("lineitem", sliceFeeder(rows)); err != nil {
			t.Fatal(err)
		}
		multi, err := cl.Run(ClusterQuery{Table: "lineitem", Filter: filter, Aggs: aggs})
		if err != nil {
			t.Fatalf("trial %d (n=%d k=%d): %v", trial, n, k, err)
		}
		if len(multi.Rows) != 1 || len(single.Rows) != 1 {
			t.Fatalf("trial %d: rows cluster=%d single=%d", trial, len(multi.Rows), len(single.Rows))
		}
		for c := range aggs {
			if multi.Rows[0][c].Int != single.Rows[0][c].Int {
				t.Fatalf("trial %d (n=%d k=%d, %q): agg %d cluster=%d single=%d",
					trial, n, k, src, c, multi.Rows[0][c].Int, single.Rows[0][c].Int)
			}
		}

		routed, err := cl.RunRouted(ClusterQuery{Table: "lineitem", Filter: filter, Aggs: aggs},
			func(part int, cands []int) int { return cands[rng.Intn(len(cands))] })
		if err != nil {
			t.Fatalf("trial %d routed: %v", trial, err)
		}
		for c := range aggs {
			if routed.Rows[0][c].Int != single.Rows[0][c].Int {
				t.Fatalf("trial %d: routed agg %d = %d, single = %d",
					trial, c, routed.Rows[0][c].Int, single.Rows[0][c].Int)
			}
		}
		if routed.Failovers != 0 {
			t.Fatalf("trial %d: routing counted %d failovers", trial, routed.Failovers)
		}
	}
}

// concurrencyFixture is a clean (fault-free) cluster for the race tests.
func concurrencyFixture(t *testing.T, n, k int) (*Cluster, ClusterQuery) {
	t.Helper()
	s := lineitemSchema()
	cl, err := NewCluster(n, smallSSD(), device.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	cl.SetReplication(k)
	if err := cl.CreateTable("lineitem", s, page.PAX, 512); err != nil {
		t.Fatal(err)
	}
	rows := genLineitems(rand.New(rand.NewSource(7)), 12000)
	if err := cl.Load("lineitem", sliceFeeder(rows)); err != nil {
		t.Fatal(err)
	}
	filter, err := expr.ParsePredicate(s,
		"l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' AND l_discount >= 5 AND l_discount <= 7")
	if err != nil {
		t.Fatal(err)
	}
	return cl, ClusterQuery{
		Table:  "lineitem",
		Filter: filter,
		Aggs: []plan.AggSpec{
			{Kind: plan.Sum, E: expr.ColRef(s, "l_extendedprice"), Name: "sum_price"},
			{Kind: plan.Count, Name: "cnt"},
		},
	}
}

// TestClusterConcurrentRunsAreSafe is the regression test for the
// cluster concurrency contract. Before Cluster grew its mutex,
// concurrent Run calls interleaved on the shared sim clocks and this
// test failed under -race; with the mutex, every concurrent caller must
// get the same merged rows as a serial run, and concurrent ResetTiming
// calls must not corrupt anything.
func TestClusterConcurrentRunsAreSafe(t *testing.T) {
	cl, q := concurrencyFixture(t, 4, 2)
	ref, err := cl.Run(q)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const runsEach = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*runsEach)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < runsEach; r++ {
				if g%3 == 0 {
					cl.ResetTiming()
				}
				res, err := cl.Run(q)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d run %d: %w", g, r, err)
					return
				}
				for c := range q.Aggs {
					if res.Rows[0][c].Int != ref.Rows[0][c].Int {
						errs <- fmt.Errorf("goroutine %d run %d: agg %d = %d, want %d",
							g, r, c, res.Rows[0][c].Int, ref.Rows[0][c].Int)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestClusterResetTimingRestoresElapsed pins the cold-session
// methodology the serving layer depends on: device timelines accumulate
// across runs, and ResetTiming restores a fresh cluster's timing so each
// session's Elapsed measures that session alone.
func TestClusterResetTimingRestoresElapsed(t *testing.T) {
	cl, q := concurrencyFixture(t, 3, 1)
	first, err := cl.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cl.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if second.Elapsed <= first.Elapsed {
		t.Fatalf("back-to-back run elapsed %v not after first %v (timelines should accumulate)",
			second.Elapsed, first.Elapsed)
	}
	cl.ResetTiming()
	third, err := cl.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if third.Elapsed != first.Elapsed {
		t.Fatalf("post-reset elapsed %v != fresh elapsed %v", third.Elapsed, first.Elapsed)
	}
}

// TestClusterRunRoutedExecutedAccounting checks the routing surface:
// the chosen replica executes (visible in Executed), an out-of-ladder
// route falls back to the primary, and routing is not failover.
func TestClusterRunRoutedExecutedAccounting(t *testing.T) {
	cl, q := concurrencyFixture(t, 4, 3)
	res, err := cl.RunRouted(q, func(part int, cands []int) int {
		if len(cands) != 3 {
			t.Errorf("partition %d: %d candidates, want 3", part, len(cands))
		}
		return cands[len(cands)-1] // always the last chained replica
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cl.Devices(); i++ {
		want := (i + 2) % cl.Devices()
		if res.Executed[i] != want {
			t.Errorf("Executed[%d] = %d, want %d", i, res.Executed[i], want)
		}
	}
	if res.Failovers != 0 || res.Attempts != cl.Devices() {
		t.Fatalf("Failovers=%d Attempts=%d, want 0 and %d", res.Failovers, res.Attempts, cl.Devices())
	}

	ident, err := cl.RunRouted(q, func(part int, cands []int) int { return 99 })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cl.Devices(); i++ {
		if ident.Executed[i] != i {
			t.Errorf("invalid route: Executed[%d] = %d, want primary %d", i, ident.Executed[i], i)
		}
	}
}
