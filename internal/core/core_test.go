package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"smartssd/internal/device"
	"smartssd/internal/expr"
	"smartssd/internal/nand"
	"smartssd/internal/page"
	"smartssd/internal/plan"
	"smartssd/internal/schema"
	"smartssd/internal/sim"
	"smartssd/internal/ssd"
)

func smallSSD() ssd.Params {
	p := ssd.DefaultParams()
	p.Geometry = nand.Geometry{
		Channels: 8, ChipsPerChannel: 2, BlocksPerChip: 16, PagesPerBlock: 32, PageSize: 8192,
	}
	return p
}

func widePaddedSchema() *schema.Schema {
	return schema.New(
		schema.Column{Name: "id", Kind: schema.Int64},
		schema.Column{Name: "grp", Kind: schema.Int32},
		schema.Column{Name: "val", Kind: schema.Int32},
		schema.Column{Name: "pad", Kind: schema.Char, Len: 140},
	)
}

func dimSchema() *schema.Schema {
	return schema.New(
		schema.Column{Name: "d_key", Kind: schema.Int32},
		schema.Column{Name: "d_payload", Kind: schema.Int32},
	)
}

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(Config{SSD: smallSSD()})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func loadFact(t *testing.T, e *Engine, layout page.Layout, n int, target Target) {
	t.Helper()
	if _, err := e.CreateTable("fact", widePaddedSchema(), layout, 4000, target); err != nil {
		t.Fatal(err)
	}
	i := 0
	err := e.Load("fact", func() (schema.Tuple, bool) {
		if i >= n {
			return nil, false
		}
		tup := schema.Tuple{
			schema.IntVal(int64(i)),
			schema.IntVal(int64(i % 40)),
			schema.IntVal(int64(i % 100)),
			schema.StrVal("pad"),
		}
		i++
		return tup, true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func loadDim(t *testing.T, e *Engine, n int) {
	t.Helper()
	if _, err := e.CreateTable("dim", dimSchema(), page.NSM, 16, OnSSD); err != nil {
		t.Fatal(err)
	}
	i := 0
	err := e.Load("dim", func() (schema.Tuple, bool) {
		if i >= n {
			return nil, false
		}
		tup := schema.Tuple{schema.IntVal(int64(i)), schema.IntVal(int64(i * 3))}
		i++
		return tup, true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func selectiveSpec() QuerySpec {
	s := widePaddedSchema()
	return QuerySpec{
		Table:  "fact",
		Filter: expr.Cmp{Op: expr.LT, L: expr.ColRef(s, "val"), R: expr.IntConst(3)},
		Output: []plan.OutputCol{
			{Name: "id", E: expr.ColRef(s, "id")},
			{Name: "val", E: expr.ColRef(s, "val")},
		},
		EstSelectivity: 0.03,
	}
}

func TestHostAndDeviceAgreeOnSelection(t *testing.T) {
	for _, layout := range []page.Layout{page.NSM, page.PAX} {
		t.Run(layout.String(), func(t *testing.T) {
			e := newEngine(t)
			loadFact(t, e, layout, 30000, OnSSD)
			spec := selectiveSpec()

			host, err := e.Run(spec, ForceHost)
			if err != nil {
				t.Fatal(err)
			}
			dev, err := e.Run(spec, ForceDevice)
			if err != nil {
				t.Fatal(err)
			}
			if host.Placement != RanHost || dev.Placement != RanDevice {
				t.Fatalf("placements: %v, %v", host.Placement, dev.Placement)
			}
			if len(host.Rows) != len(dev.Rows) {
				t.Fatalf("host %d rows, device %d rows", len(host.Rows), len(dev.Rows))
			}
			for i := range host.Rows {
				if host.Rows[i][0].Int != dev.Rows[i][0].Int || host.Rows[i][1].Int != dev.Rows[i][1].Int {
					t.Fatalf("row %d differs: %v vs %v", i, host.Rows[i], dev.Rows[i])
				}
			}
			// The selective scan must be faster pushed down.
			if dev.Elapsed >= host.Elapsed {
				t.Fatalf("device %v not faster than host %v", dev.Elapsed, host.Elapsed)
			}
		})
	}
}

func TestHostAndDeviceAgreeOnJoinAggregate(t *testing.T) {
	e := newEngine(t)
	loadFact(t, e, page.PAX, 20000, OnSSD)
	loadDim(t, e, 40)
	fact := widePaddedSchema()
	np := fact.NumColumns()
	spec := QuerySpec{
		Table:  "fact",
		Join:   &JoinClause{BuildTable: "dim", BuildKey: "d_key", ProbeKey: "grp"},
		Filter: expr.Cmp{Op: expr.LT, L: expr.ColRef(fact, "val"), R: expr.IntConst(50)},
		Aggs: []plan.AggSpec{
			{Kind: plan.Sum, E: expr.Col{Index: np + 1, Name: "d_payload", K: schema.Int32}, Name: "sum_payload"},
			{Kind: plan.Count, Name: "cnt"},
		},
		EstSelectivity: 0.5,
	}
	host, err := e.Run(spec, ForceHost)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := e.Run(spec, ForceDevice)
	if err != nil {
		t.Fatal(err)
	}
	// Independent ground truth.
	var wantSum, wantCnt int64
	for i := 0; i < 20000; i++ {
		if i%100 < 50 {
			wantSum += int64((i % 40) * 3)
			wantCnt++
		}
	}
	for name, r := range map[string]*Result{"host": host, "device": dev} {
		if len(r.Rows) != 1 {
			t.Fatalf("%s returned %d rows", name, len(r.Rows))
		}
		if r.Rows[0][0].Int != wantSum || r.Rows[0][1].Int != wantCnt {
			t.Fatalf("%s agg = %v, want sum=%d cnt=%d", name, r.Rows[0], wantSum, wantCnt)
		}
	}
}

func TestAutoModePushesSelectiveScanDown(t *testing.T) {
	e := newEngine(t)
	loadFact(t, e, page.PAX, 30000, OnSSD)
	res, err := e.Run(selectiveSpec(), Auto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement != RanDevice {
		t.Fatalf("auto chose %v (%s), want device", res.Placement, res.Decision.Reason)
	}
	if !res.Decision.Pushdown {
		t.Fatal("decision not recorded")
	}
}

func TestDirtyBufferPoolVetoesPushdown(t *testing.T) {
	e := newEngine(t)
	loadFact(t, e, page.PAX, 30000, OnSSD)
	tbl, _ := e.Table("fact")
	// Warm engine so the dirty page survives into Run.
	e.SetCold(false)
	lba := tbl.File.StartLBA() + 1
	data, _, err := e.SSD().ReadPage(lba, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Pool().Put(lba, data); err != nil {
		t.Fatal(err)
	}
	e.Pool().Unpin(lba, true) // dirty: device copy is stale
	res, err := e.Run(selectiveSpec(), Auto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement != RanDevice && !strings.Contains(res.Decision.Reason, "dirty") {
		t.Fatalf("reason = %q, want dirty-page veto", res.Decision.Reason)
	}
	if res.Placement == RanDevice {
		t.Fatal("pushdown ran over stale device pages")
	}
}

func TestWarmCacheFavoursHost(t *testing.T) {
	e, err := New(Config{SSD: smallSSD(), PoolPages: 8192})
	if err != nil {
		t.Fatal(err)
	}
	loadFact(t, e, page.PAX, 30000, OnSSD)
	e.SetCold(false)
	// First run warms the pool through the host path.
	if _, err := e.Run(selectiveSpec(), ForceHost); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(selectiveSpec(), Auto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement != RanHost {
		t.Fatalf("auto chose %v with a warm cache (%s)", res.Placement, res.Decision.Reason)
	}
	if !strings.Contains(res.Decision.Reason, "cached") {
		t.Fatalf("reason = %q, want cache-based veto", res.Decision.Reason)
	}
}

func TestHDDTableRunsHostOnly(t *testing.T) {
	e := newEngine(t)
	loadFact(t, e, page.NSM, 5000, OnHDD)
	spec := selectiveSpec()
	res, err := e.Run(spec, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement != RanHost {
		t.Fatal("HDD table did not run on host")
	}
	if res.Bottleneck != "hdd-media" {
		t.Fatalf("bottleneck = %q", res.Bottleneck)
	}
	if _, err := e.Run(spec, ForceDevice); err == nil {
		t.Fatal("ForceDevice on HDD table succeeded")
	}
}

func TestEnergyAccountingPopulated(t *testing.T) {
	e := newEngine(t)
	loadFact(t, e, page.PAX, 30000, OnSSD)
	host, _ := e.Run(selectiveSpec(), ForceHost)
	dev, _ := e.Run(selectiveSpec(), ForceDevice)
	if host.Energy.SystemJ <= 0 || dev.Energy.SystemJ <= 0 {
		t.Fatal("energy not accounted")
	}
	// Faster run, lower energy: the paper's core energy result.
	if dev.Energy.SystemJ >= host.Energy.SystemJ {
		t.Fatalf("device energy %.1fJ not below host %.1fJ", dev.Energy.SystemJ, host.Energy.SystemJ)
	}
	if host.Bottleneck != "host-link" {
		t.Fatalf("host run bottleneck = %q, want host-link", host.Bottleneck)
	}
}

func TestExplain(t *testing.T) {
	e := newEngine(t)
	loadFact(t, e, page.PAX, 10000, OnSSD)
	out, err := e.Explain(selectiveSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"host plan:", "device plan:", "decision:", "TableScan"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestCatalogErrors(t *testing.T) {
	e := newEngine(t)
	if _, err := e.Run(QuerySpec{Table: "nope"}, Auto); !errors.Is(err, ErrNoTable) {
		t.Fatalf("unknown table err = %v", err)
	}
	loadFact(t, e, page.NSM, 100, OnSSD)
	if _, err := e.CreateTable("fact", widePaddedSchema(), page.NSM, 8, OnSSD); err == nil {
		t.Fatal("duplicate CreateTable succeeded")
	}
	e2, err := New(Config{SSD: smallSSD(), DisableHDD: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.CreateTable("x", dimSchema(), page.NSM, 8, OnHDD); err == nil {
		t.Fatal("CreateTable on disabled HDD succeeded")
	}
}

func TestClusterMatchesSingleEngineAggregate(t *testing.T) {
	const n = 30000
	gen := func() func() (schema.Tuple, bool) {
		i := 0
		return func() (schema.Tuple, bool) {
			if i >= n {
				return nil, false
			}
			tup := schema.Tuple{
				schema.IntVal(int64(i)),
				schema.IntVal(int64(i % 40)),
				schema.IntVal(int64(i % 100)),
				schema.StrVal("pad"),
			}
			i++
			return tup, true
		}
	}
	s := widePaddedSchema()
	aggs := []plan.AggSpec{
		{Kind: plan.Sum, E: expr.ColRef(s, "id"), Name: "sum_id"},
		{Kind: plan.Count, Name: "cnt"},
	}
	filter := expr.Cmp{Op: expr.LT, L: expr.ColRef(s, "val"), R: expr.IntConst(30)}

	// Single engine.
	e := newEngine(t)
	loadFact(t, e, page.PAX, n, OnSSD)
	single, err := e.Run(QuerySpec{Table: "fact", Filter: filter, Aggs: aggs, EstSelectivity: 0.3}, ForceDevice)
	if err != nil {
		t.Fatal(err)
	}

	// Four-device cluster.
	cl, err := NewCluster(4, smallSSD(), device.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.CreateTable("fact", s, page.PAX, 1024); err != nil {
		t.Fatal(err)
	}
	if err := cl.Load("fact", gen()); err != nil {
		t.Fatal(err)
	}
	multi, err := cl.Run(ClusterQuery{Table: "fact", Filter: filter, Aggs: aggs})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Rows) != 1 {
		t.Fatalf("cluster agg rows = %d", len(multi.Rows))
	}
	if multi.Rows[0][0].Int != single.Rows[0][0].Int || multi.Rows[0][1].Int != single.Rows[0][1].Int {
		t.Fatalf("cluster agg %v != single %v", multi.Rows[0], single.Rows[0])
	}
	// Four parallel devices should be substantially faster than one.
	if multi.Elapsed >= single.Elapsed*3/4 {
		t.Fatalf("cluster elapsed %v not much below single %v", multi.Elapsed, single.Elapsed)
	}
	if len(multi.PerDevice) != 4 {
		t.Fatalf("PerDevice = %v", multi.PerDevice)
	}
}

func TestClusterJoinWithReplicatedBuild(t *testing.T) {
	const n = 10000
	s := widePaddedSchema()
	cl, err := NewCluster(2, smallSSD(), device.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.CreateTable("fact", s, page.PAX, 1024); err != nil {
		t.Fatal(err)
	}
	if err := cl.CreateTable("dim", dimSchema(), page.NSM, 16); err != nil {
		t.Fatal(err)
	}
	i := 0
	err = cl.Load("fact", func() (schema.Tuple, bool) {
		if i >= n {
			return nil, false
		}
		tup := schema.Tuple{
			schema.IntVal(int64(i)), schema.IntVal(int64(i % 40)),
			schema.IntVal(int64(i % 100)), schema.StrVal("p"),
		}
		i++
		return tup, true
	})
	if err != nil {
		t.Fatal(err)
	}
	err = cl.Replicate("dim", func() func() (schema.Tuple, bool) {
		j := 0
		return func() (schema.Tuple, bool) {
			if j >= 40 {
				return nil, false
			}
			tup := schema.Tuple{schema.IntVal(int64(j)), schema.IntVal(int64(j * 3))}
			j++
			return tup, true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	np := s.NumColumns()
	res, err := cl.Run(ClusterQuery{
		Table: "fact",
		Join:  &JoinClause{BuildTable: "dim", BuildKey: "d_key", ProbeKey: "grp"},
		Aggs: []plan.AggSpec{
			{Kind: plan.Sum, E: expr.Col{Index: np + 1, Name: "d_payload", K: schema.Int32}, Name: "s"},
			{Kind: plan.Count, Name: "c"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wantSum int64
	for i := 0; i < n; i++ {
		wantSum += int64((i % 40) * 3)
	}
	if res.Rows[0][0].Int != wantSum || res.Rows[0][1].Int != int64(n) {
		t.Fatalf("cluster join agg = %v, want sum=%d cnt=%d", res.Rows[0], wantSum, n)
	}
}

func TestStageUtilizationProfile(t *testing.T) {
	e := newEngine(t)
	loadFact(t, e, page.PAX, 30000, OnSSD)
	dev, err := e.Run(selectiveSpec(), ForceDevice)
	if err != nil {
		t.Fatal(err)
	}
	stages := map[string]float64{}
	for _, st := range dev.Stages {
		if st.Utilization < 0 || st.Utilization > 1 {
			t.Fatalf("stage %s utilization %.2f out of [0,1]", st.Name, st.Utilization)
		}
		stages[st.Name] = st.Utilization
	}
	// A pushdown run keeps the device CPU near-saturated, the DMA bus
	// partially busy, and the host link nearly idle (results only).
	if stages["device-cpu"] < 0.8 {
		t.Errorf("device-cpu utilization = %.2f, want near 1 (CPU-bound run)", stages["device-cpu"])
	}
	if stages["host-link"] > 0.2 {
		t.Errorf("host-link utilization = %.2f, want near 0 for pushdown", stages["host-link"])
	}
	if stages["dma-bus"] <= 0 || stages["dma-bus"] >= 1 {
		t.Errorf("dma-bus utilization = %.2f, want intermediate", stages["dma-bus"])
	}

	host, err := e.Run(selectiveSpec(), ForceHost)
	if err != nil {
		t.Fatal(err)
	}
	hstages := map[string]float64{}
	for _, st := range host.Stages {
		hstages[st.Name] = st.Utilization
	}
	if hstages["host-link"] < 0.9 {
		t.Errorf("host run link utilization = %.2f, want near 1 (link-bound)", hstages["host-link"])
	}
	if hstages["device-cpu"] != 0 {
		t.Errorf("host run device-cpu utilization = %.2f, want 0", hstages["device-cpu"])
	}

	hddE := newEngine(t)
	loadFact(t, hddE, page.NSM, 60000, OnHDD) // large enough that transfer, not the initial seek, dominates
	hres, err := hddE.Run(selectiveSpec(), ForceHost)
	if err != nil {
		t.Fatal(err)
	}
	if len(hres.Stages) != 2 || hres.Stages[0].Name != "hdd-media" {
		t.Fatalf("HDD stages = %+v", hres.Stages)
	}
	if hres.Stages[0].Utilization < 0.9 {
		t.Errorf("hdd-media utilization = %.2f, want near 1", hres.Stages[0].Utilization)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	e := newEngine(t)
	loadFact(t, e, page.PAX, 5000, OnSSD)
	s := widePaddedSchema()
	spec := QuerySpec{
		Table:  "fact",
		Filter: expr.Cmp{Op: expr.LT, L: expr.ColRef(s, "val"), R: expr.IntConst(10)},
		Output: []plan.OutputCol{
			{Name: "id", E: expr.ColRef(s, "id")},
			{Name: "val", E: expr.ColRef(s, "val")},
		},
		OrderBy:        []plan.OrderKey{{Col: 1, Desc: true}, {Col: 0}},
		Limit:          25,
		EstSelectivity: 0.1,
	}
	for _, mode := range []Mode{ForceHost, ForceDevice} {
		res, err := e.Run(spec, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(res.Rows) != 25 {
			t.Fatalf("%v: limit gave %d rows", mode, len(res.Rows))
		}
		for i := 1; i < len(res.Rows); i++ {
			a, b := res.Rows[i-1], res.Rows[i]
			if a[1].Int < b[1].Int {
				t.Fatalf("%v: val not descending at %d", mode, i)
			}
			if a[1].Int == b[1].Int && a[0].Int > b[0].Int {
				t.Fatalf("%v: id tiebreak not ascending at %d", mode, i)
			}
		}
		// Top-25 by val desc: all val == 9 (500 candidates with val 9).
		if res.Rows[0][1].Int != 9 || res.Rows[24][1].Int != 9 {
			t.Fatalf("%v: top rows have vals %d..%d, want 9", mode, res.Rows[0][1].Int, res.Rows[24][1].Int)
		}
	}
}

func TestOrderByChargesHostTime(t *testing.T) {
	e := newEngine(t)
	loadFact(t, e, page.PAX, 20000, OnSSD)
	s := widePaddedSchema()
	base := QuerySpec{
		Table: "fact",
		Output: []plan.OutputCol{
			{Name: "id", E: expr.ColRef(s, "id")},
		},
		EstSelectivity: 1,
	}
	plain, err := e.Run(base, ForceDevice)
	if err != nil {
		t.Fatal(err)
	}
	sorted := base
	sorted.OrderBy = []plan.OrderKey{{Col: 0, Desc: true}}
	withSort, err := e.Run(sorted, ForceDevice)
	if err != nil {
		t.Fatal(err)
	}
	if withSort.Elapsed <= plain.Elapsed {
		t.Fatalf("sorted run %v not slower than plain %v", withSort.Elapsed, plain.Elapsed)
	}
	if withSort.Rows[0][0].Int != 19999 {
		t.Fatalf("descending sort top = %d", withSort.Rows[0][0].Int)
	}
}

func TestOrderByValidation(t *testing.T) {
	e := newEngine(t)
	loadFact(t, e, page.NSM, 100, OnSSD)
	s := widePaddedSchema()
	spec := QuerySpec{
		Table:          "fact",
		Output:         []plan.OutputCol{{Name: "id", E: expr.ColRef(s, "id")}},
		OrderBy:        []plan.OrderKey{{Col: 5}},
		EstSelectivity: 1,
	}
	if _, err := e.Run(spec, ForceHost); err == nil {
		t.Fatal("out-of-range ORDER BY column accepted")
	}
}

func TestTracerRecordsPipeline(t *testing.T) {
	e := newEngine(t)
	loadFact(t, e, page.PAX, 5000, OnSSD)
	type span struct {
		ready, done time.Duration
	}
	seen := map[string][]span{}
	e.SetTracer(func(ev sim.TraceEvent) {
		if ev.Done < ev.Ready {
			t.Fatalf("%s: done %v before ready %v", ev.Server, ev.Done, ev.Ready)
		}
		if ev.Start < ev.Ready || ev.Done < ev.Start {
			t.Fatalf("%s: start %v outside [%v, %v]", ev.Server, ev.Start, ev.Ready, ev.Done)
		}
		if ev.Units <= 0 {
			t.Fatalf("%s: non-positive units %d", ev.Server, ev.Units)
		}
		if ev.Busy <= 0 || ev.Busy > ev.Done-ev.Start {
			t.Fatalf("%s: busy %v outside (0, %v]", ev.Server, ev.Busy, ev.Done-ev.Start)
		}
		seen[ev.Server] = append(seen[ev.Server], span{ev.Ready, ev.Done})
	})
	if _, err := e.Run(selectiveSpec(), ForceDevice); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dma-bus", "device-cpu", "flash-ch0", "host-link"} {
		if len(seen[want]) == 0 {
			t.Errorf("no trace records for %s", want)
		}
	}
	// Removing the tracer stops recording.
	before := len(seen["dma-bus"])
	e.SetTracer(nil)
	if _, err := e.Run(selectiveSpec(), ForceDevice); err != nil {
		t.Fatal(err)
	}
	if len(seen["dma-bus"]) != before {
		t.Error("tracer kept recording after removal")
	}
}
