package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"smartssd/internal/device"
	"smartssd/internal/expr"
	"smartssd/internal/fault"
	"smartssd/internal/page"
	"smartssd/internal/plan"
	"smartssd/internal/schema"
	"smartssd/internal/ssd"
	"smartssd/internal/wal"
)

// The headline durability property: for EVERY power-cut point in a
// recorded run, recovery yields exactly the state of the acknowledged
// commits — never a torn half-update, never a lost acked commit — and
// both execution paths of the recovered engine agree with a
// never-crashed reference, byte for byte on the answer values.

// sweepOp is one step of the deterministic mixed workload: a
// transactional update, or a checkpoint (pool flush + log reset).
type sweepOp struct {
	flush  bool
	filter expr.Expr
	sets   []SetClause
}

func sweepOps() []sweepOp {
	s := widePaddedSchema()
	col := func(name string) expr.Expr { return expr.ColRef(s, name) }
	return []sweepOp{
		{filter: expr.Cmp{Op: expr.LT, L: col("val"), R: expr.IntConst(10)},
			sets: []SetClause{{Column: "val", E: expr.Arith{Op: expr.Add, L: col("val"), R: expr.IntConst(1000)}}}},
		{filter: expr.Cmp{Op: expr.EQ, L: col("grp"), R: expr.IntConst(5)},
			sets: []SetClause{{Column: "val", E: expr.IntConst(7)}}},
		{flush: true},
		{filter: expr.Cmp{Op: expr.LT, L: col("id"), R: expr.IntConst(50)},
			sets: []SetClause{{Column: "pad", E: expr.StrConst("CRASHTEST")}}},
		{filter: expr.Cmp{Op: expr.GE, L: col("val"), R: expr.IntConst(1000)},
			sets: []SetClause{{Column: "val", E: expr.Arith{Op: expr.Sub, L: col("val"), R: expr.IntConst(500)}}}},
		{flush: true},
		{filter: expr.Cmp{Op: expr.GE, L: col("id"), R: expr.IntConst(550)},
			sets: []SetClause{{Column: "grp", E: expr.IntConst(0)}}},
	}
}

// sweepAnswer runs the canonical aggregate probe and returns its one
// row of values.
func sweepAnswer(t *testing.T, e *Engine, mode Mode) schema.Tuple {
	t.Helper()
	s := widePaddedSchema()
	res, err := e.Run(QuerySpec{
		Table: "fact",
		Aggs: []plan.AggSpec{
			{Kind: plan.Sum, E: expr.ColRef(s, "val"), Name: "sv"},
			{Kind: plan.Sum, E: expr.ColRef(s, "grp"), Name: "sg"},
			{Kind: plan.Count, Name: "c"},
		},
		EstSelectivity: 1,
	}, mode)
	if err != nil {
		t.Fatalf("probe query: %v", err)
	}
	return res.Rows[0]
}

func tuplesEqual(a, b schema.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Int != b[i].Int || !bytes.Equal(a[i].Bytes, b[i].Bytes) {
			return false
		}
	}
	return true
}

// buildSweepEngine creates the sweep fixture: 600 wide rows on the
// small SSD, optionally with a fault plan.
func buildSweepEngine(t *testing.T, fc fault.Config) *Engine {
	t.Helper()
	params := smallSSD()
	params.Fault = fc
	e, err := New(Config{SSD: params})
	if err != nil {
		t.Fatal(err)
	}
	loadFact(t, e, page.PAX, 600, OnSSD)
	e.SetCold(false)
	return e
}

// runSweepWorkload applies ops until one fails; it reports how many
// update commits were acknowledged and the first error.
func runSweepWorkload(e *Engine, ops []sweepOp) (acked int, err error) {
	for _, op := range ops {
		if op.flush {
			if err := e.FlushPool(); err != nil {
				return acked, err
			}
			continue
		}
		if _, err := e.Update("fact", op.filter, op.sets); err != nil {
			return acked, err
		}
		acked++
	}
	return acked, nil
}

func TestPowerCutSweepRecoversAckedPrefix(t *testing.T) {
	ops := sweepOps()

	// Reference: a never-crashed run, recording the probe answer after
	// every acknowledged commit. answers[k] is the state after k
	// commits.
	ref := buildSweepEngine(t, fault.Config{})
	answers := []schema.Tuple{sweepAnswer(t, ref, ForceHost)}
	for _, op := range ops {
		if op.flush {
			if err := ref.FlushPool(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if _, err := ref.Update("fact", op.filter, op.sets); err != nil {
			t.Fatal(err)
		}
		answers = append(answers, sweepAnswer(t, ref, ForceHost))
	}
	w := ref.DurableWrites()
	if w < 10 {
		t.Fatalf("workload made only %d durable writes; sweep would be trivial", w)
	}

	for cut := uint64(1); cut <= w; cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			e := buildSweepEngine(t, fault.Config{Seed: 42, PowerCutAfter: int64(cut)})
			acked, err := runSweepWorkload(e, ops)
			if err == nil {
				t.Fatalf("cut %d of %d never fired", cut, w)
			}
			if !errors.Is(err, wal.ErrPowerLost) {
				t.Fatalf("workload died of %v, want ErrPowerLost", err)
			}

			// The crash image is the media exactly as the cut left it:
			// SaveImage never flushes the pool (RAM is lost).
			var img bytes.Buffer
			if err := e.SaveImage(&img); err != nil {
				t.Fatalf("imaging crashed engine: %v", err)
			}
			e2, err := LoadImage(Config{}, &img)
			if err != nil {
				t.Fatalf("recovering crashed image: %v", err)
			}
			want := answers[acked]
			for _, mode := range []Mode{ForceHost, ForceDevice} {
				got := sweepAnswer(t, e2, mode)
				if !tuplesEqual(got, want) {
					t.Fatalf("%v after recovery = %v, want acked-prefix (%d commits) answer %v",
						mode, got, acked, want)
				}
			}
		})
	}
}

// A corrupted log record is detected on recovery as a typed error —
// never silently replayed.
func TestCorruptLogRecordFailsRecovery(t *testing.T) {
	e := buildSweepEngine(t, fault.Config{Seed: 9, LogCorruptRate: 1})
	s := widePaddedSchema()
	if _, err := e.Update("fact", nil,
		[]SetClause{{Column: "val", E: expr.Arith{Op: expr.Add, L: expr.ColRef(s, "val"), R: expr.IntConst(1)}}}); err != nil {
		t.Fatalf("commit with latent corruption must succeed at write time: %v", err)
	}
	var img bytes.Buffer
	if err := e.SaveImage(&img); err != nil {
		t.Fatal(err)
	}
	_, err := LoadImage(Config{}, &img)
	if !errors.Is(err, wal.ErrCorruptRecord) {
		t.Fatalf("recovery over corrupt record: %v, want wal.ErrCorruptRecord", err)
	}
}

// A destroyed page in the middle of the log — with valid pages after
// it — is mid-log damage: committed records are gone, and recovery
// must refuse rather than replay around the hole.
func TestTornMidLogFailsRecovery(t *testing.T) {
	e := buildSweepEngine(t, fault.Config{})
	s := widePaddedSchema()
	bump := []SetClause{{Column: "val", E: expr.Arith{Op: expr.Add, L: expr.ColRef(s, "val"), R: expr.IntConst(1)}}}
	for i := 0; i < 3; i++ {
		if _, err := e.Update("fact", nil, bump); err != nil {
			t.Fatal(err)
		}
	}
	if e.WAL() == nil || e.WAL().Stats().PageWrites < 3 {
		t.Fatalf("fixture wrote %v log pages, need ≥ 3", e.WAL().Stats())
	}
	// Zero the second log page in place, as a torn flash write would.
	if err := e.SSD().RestorePage(e.WAL().Start()+1, make([]byte, e.SSD().PageSize())); err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	if err := e.SaveImage(&img); err != nil {
		t.Fatal(err)
	}
	_, err := LoadImage(Config{}, &img)
	if !errors.Is(err, wal.ErrTornWrite) {
		t.Fatalf("recovery over mid-log damage: %v, want wal.ErrTornWrite", err)
	}
}

// Zero-update engines never activate the log: their images carry no
// region pages and recovery is a no-op, keeping goldens byte-stable.
func TestReadOnlyImageSkipsRecovery(t *testing.T) {
	e := newEngine(t)
	loadFact(t, e, page.NSM, 200, OnSSD)
	var img bytes.Buffer
	if err := e.SaveImage(&img); err != nil {
		t.Fatal(err)
	}
	e2, err := LoadImage(Config{}, &img)
	if err != nil {
		t.Fatal(err)
	}
	if rep := e2.LastRecovery(); rep == nil || rep.LogPages != 0 || len(rep.Committed) != 0 {
		t.Fatalf("read-only image recovery = %+v, want empty", rep)
	}
	if e2.WAL() != nil {
		t.Fatal("read-only image activated the log")
	}
}

// --- cluster backend ---

// clusterSweepFixture builds a 3-device, 2-copy cluster with 240 rows.
func clusterSweepFixture(t *testing.T, fc fault.Config) *Cluster {
	t.Helper()
	params := smallSSD()
	params.Fault = fc
	cl, err := NewCluster(3, params, device.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	cl.SetReplication(2)
	if err := cl.CreateTable("fact", widePaddedSchema(), page.NSM, 64); err != nil {
		t.Fatal(err)
	}
	i := 0
	err = cl.Load("fact", func() (schema.Tuple, bool) {
		if i >= 240 {
			return nil, false
		}
		tup := schema.Tuple{
			schema.IntVal(int64(i)), schema.IntVal(int64(i % 40)),
			schema.IntVal(int64(i % 100)), schema.StrVal("pad"),
		}
		i++
		return tup, true
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func clusterSweepOps() []sweepOp {
	s := widePaddedSchema()
	col := func(name string) expr.Expr { return expr.ColRef(s, name) }
	rng := func(lo, hi int64) expr.Expr {
		return expr.And{Terms: []expr.Expr{
			expr.Cmp{Op: expr.GE, L: col("id"), R: expr.IntConst(lo)},
			expr.Cmp{Op: expr.LT, L: col("id"), R: expr.IntConst(hi)},
		}}
	}
	return []sweepOp{
		{filter: rng(0, 20), sets: []SetClause{{Column: "val", E: expr.IntConst(1000)}}},
		{filter: rng(20, 40), sets: []SetClause{{Column: "val", E: expr.Arith{Op: expr.Add, L: col("val"), R: expr.IntConst(2000)}}}},
		{filter: rng(0, 10), sets: []SetClause{{Column: "grp", E: expr.IntConst(99)}}},
		{filter: rng(200, 240), sets: []SetClause{{Column: "val", E: expr.IntConst(-5)}}},
	}
}

func clusterSweepAnswer(t *testing.T, cl *Cluster) schema.Tuple {
	t.Helper()
	s := widePaddedSchema()
	res, err := cl.Run(ClusterQuery{
		Table: "fact",
		Aggs: []plan.AggSpec{
			{Kind: plan.Sum, E: expr.ColRef(s, "val"), Name: "sv"},
			{Kind: plan.Sum, E: expr.ColRef(s, "grp"), Name: "sg"},
			{Kind: plan.Count, Name: "c"},
		},
	})
	if err != nil {
		t.Fatalf("cluster probe: %v", err)
	}
	return res.Rows[0]
}

// assertCopiesIdentical proves every replica carries exactly its
// primary's bytes — updates and recovery repair all copies alike, so
// failover stays sound after a crash.
func assertCopiesIdentical(t *testing.T, cl *Cluster) {
	t.Helper()
	n := len(cl.devices)
	for name, files := range cl.tables {
		reps := cl.replicaFiles[name]
		for i, f := range files {
			if len(reps) <= i {
				continue
			}
			for j, rf := range reps[i] {
				dev := cl.devices[(i+1+j)%n]
				for p := int64(0); p < f.Pages(); p++ {
					a, _, err := cl.devices[i].ReadPage(f.StartLBA()+p, 0)
					if err != nil {
						t.Fatal(err)
					}
					b, _, err := dev.ReadPage(rf.StartLBA()+p, 0)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(a, b) {
						t.Fatalf("%s partition %d page %d: replica %d diverges from primary", name, i, p, j)
					}
				}
			}
		}
	}
}

func TestClusterPowerCutSweepRecoversAckedPrefix(t *testing.T) {
	ops := clusterSweepOps()

	ref := clusterSweepFixture(t, fault.Config{})
	answers := []schema.Tuple{clusterSweepAnswer(t, ref)}
	for _, op := range ops {
		if _, _, err := ref.Update("fact", op.filter, op.sets); err != nil {
			t.Fatal(err)
		}
		answers = append(answers, clusterSweepAnswer(t, ref))
	}
	assertCopiesIdentical(t, ref)
	w := ref.DurableWrites()
	if w < 8 {
		t.Fatalf("cluster workload made only %d durable writes", w)
	}

	for cut := uint64(1); cut <= w; cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			cl := clusterSweepFixture(t, fault.Config{Seed: 17, PowerCutAfter: int64(cut)})
			acked := 0
			var opErr error
			for _, op := range ops {
				if _, _, opErr = cl.Update("fact", op.filter, op.sets); opErr != nil {
					break
				}
				acked++
			}
			if opErr == nil {
				t.Fatalf("cut %d of %d never fired", cut, w)
			}
			if !errors.Is(opErr, wal.ErrPowerLost) {
				t.Fatalf("cluster workload died of %v, want ErrPowerLost", opErr)
			}
			rep, err := cl.Recover()
			if err != nil {
				t.Fatalf("cluster recovery: %v", err)
			}
			// A cut during the WAL flush loses the in-flight commit; a
			// cut during the post-flush fan-out loses only the ack —
			// the commit record is durable, so recovery installs it.
			// Either way the durable set is a prefix of the submission
			// order, at most one past the acked set.
			durable := len(rep.Committed)
			if durable < acked || durable > acked+1 {
				t.Fatalf("recovery found %d committed txns with %d acked", durable, acked)
			}
			got := clusterSweepAnswer(t, cl)
			if !tuplesEqual(got, answers[durable]) {
				t.Fatalf("recovered cluster answer = %v, want durable-prefix (%d commits) %v",
					got, durable, answers[durable])
			}
			assertCopiesIdentical(t, cl)
		})
	}
}

func TestClusterUpdateValidation(t *testing.T) {
	cl := clusterSweepFixture(t, fault.Config{})
	if _, _, err := cl.Update("nope", nil, []SetClause{{Column: "val", E: expr.IntConst(1)}}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, _, err := cl.Update("fact", nil, nil); err == nil {
		t.Error("empty SET accepted")
	}
	// A full-table update must hit every partition.
	n, _, err := cl.Update("fact", nil, []SetClause{{Column: "val", E: expr.IntConst(3)}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 240 {
		t.Fatalf("updated %d rows, want 240", n)
	}
	got := clusterSweepAnswer(t, cl)
	if got[0].Int != 3*240 {
		t.Fatalf("post-update sum(val) = %d, want %d", got[0].Int, 3*240)
	}
	assertCopiesIdentical(t, cl)
}

var _ = ssd.Params{} // keep the import stable across edits
