package core

import (
	"fmt"
	"time"

	"smartssd/internal/expr"
	"smartssd/internal/page"
	"smartssd/internal/ssd"
	"smartssd/internal/txn"
	"smartssd/internal/wal"
)

// Cluster write path. The host is the coordinator (§4.3's "master
// node"): it keeps one write-ahead log on device 0's reserved region,
// stages every partition's pages through the transaction layer, and —
// once the log flush acknowledges — force-writes the rebuilt pages to
// the partition's primary and every chained replica, so all copies
// stay byte-identical and replica failover keeps working after
// updates. There is no two-phase commit: workers hold no independent
// state, exactly as in the paper's coordinator framing.

// copyRef locates one physical copy of a partition.
type copyRef struct {
	dev   *ssd.Device
	start int64
}

// partitionCopies adapts one partition (primary plus replicas) to
// txn.Device: reads come from the primary, writes fan out to every
// copy at the copy's own extent, each guarded against power cuts by
// the coordinator's injector.
type partitionCopies struct {
	c            *Cluster
	primaryStart int64
	copies       []copyRef
}

func (p partitionCopies) ReadPage(lba int64, ready time.Duration) ([]byte, time.Duration, error) {
	return p.copies[0].dev.ReadPage(lba, ready)
}

func (p partitionCopies) WritePage(lba int64, data []byte, ready time.Duration) (time.Duration, error) {
	idx := lba - p.primaryStart
	last := ready
	for _, cp := range p.copies {
		p.c.dataWrites++
		if err := wal.GuardDataWrite(p.c.devices[0].Injector()); err != nil {
			return last, err
		}
		done, err := cp.dev.WritePage(cp.start+idx, data, ready)
		if err != nil {
			return last, err
		}
		if done > last {
			last = done
		}
	}
	return last, nil
}

// ensureTxnLocked activates the coordinator log and transaction
// manager. Caller holds c.mu.
func (c *Cluster) ensureTxnLocked() error {
	if c.txns != nil {
		return nil
	}
	coord := c.devices[0]
	start, _ := wal.Region(coord.CapacityPages())
	if used := c.allocs[0].Used(); used > start {
		return fmt.Errorf("core: cluster WAL region starts at page %d but %d pages are allocated on device 0",
			start, used)
	}
	log, err := wal.Create(coord, coord.Injector())
	if err != nil {
		return err
	}
	c.walLog = log
	c.txns = txn.NewManager(log, c.resolvePartition)
	return nil
}

// resolvePartition maps a partition file name ("table.pN") to its
// transaction-layer table, whose device fans writes out to every copy.
func (c *Cluster) resolvePartition(name string) (txn.Table, error) {
	for tname, files := range c.tables {
		for i, f := range files {
			if f.Name() != name {
				continue
			}
			copies := []copyRef{{dev: c.devices[i], start: f.StartLBA()}}
			if reps := c.replicaFiles[tname]; len(reps) > i {
				for j, rf := range reps[i] {
					copies = append(copies, copyRef{dev: c.devices[(i+1+j)%len(c.devices)], start: rf.StartLBA()})
				}
			}
			return txn.Table{
				Name:     name,
				Schema:   f.Schema(),
				Layout:   f.Layout(),
				StartLBA: f.StartLBA(),
				Pages:    f.Pages(),
				Dev:      partitionCopies{c: c, primaryStart: f.StartLBA(), copies: copies},
				Durable:  true,
			}, nil
		}
	}
	return txn.Table{}, fmt.Errorf("%w: partition %q", ErrNoTable, name)
}

// Update runs one transactional UPDATE across every partition of the
// named table: stage all partitions, append the redo records to the
// coordinator log, flush (the durability point — the returned time is
// when the commit is acknowledged), then force-write the rebuilt pages
// to the primary and every replica copy. It reports the number of rows
// updated and the acknowledgement time.
func (c *Cluster) Update(table string, filter expr.Expr, sets []SetClause) (int64, time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	files, ok := c.tables[table]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrNoTable, table)
	}
	if err := c.ensureTxnLocked(); err != nil {
		return 0, 0, err
	}
	tx := c.txns.Begin()
	var updated int64
	for _, f := range files {
		n, err := tx.Update(f.Name(), filter, sets)
		if err != nil {
			tx.Abort()
			return updated, 0, err
		}
		updated += n
	}
	ack, err := tx.Commit(0)
	if err != nil {
		return updated, ack, err
	}
	return updated, ack, nil
}

// DurableWrites reports the cluster's guarded durable-write attempts
// (coordinator log pages plus fanned-out data-page writes); the
// power-cut sweep uses a fault-free run's count as its bound.
func (c *Cluster) DurableWrites() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.dataWrites
	if c.walLog != nil {
		n += c.walLog.Stats().PageWrites
	}
	return n
}

// Recover replays the coordinator log in place: power is restored,
// committed after-images are installed on every copy of every touched
// partition, and the log is checkpointed. Mid-log damage and record
// corruption surface as typed errors (wal.ErrTornWrite,
// wal.ErrCorruptRecord); they are never silently replayed. Recovery is
// idempotent — a crash mid-apply just replays again.
func (c *Cluster) Recover() (*RecoveryReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	coord := c.devices[0]
	coord.Injector().RestorePower()
	log, rec, err := wal.Open(coord, coord.Injector())
	if err != nil {
		return nil, fmt.Errorf("core: cluster recover: %w", err)
	}
	rep := &RecoveryReport{
		Committed:     rec.Committed,
		LogPages:      rec.ValidPages,
		TruncatedTail: rec.TruncatedTail,
	}
	if rec.ValidPages == 0 && !rec.TruncatedTail {
		return rep, nil
	}

	type pageKey struct {
		part string
		idx  uint32
	}
	repaired := make(map[pageKey][]byte)
	tabs := make(map[string]txn.Table)
	var order []pageKey
	for _, u := range rec.CommittedUpdates() {
		tab, ok := tabs[u.Table]
		if !ok {
			tab, err = c.resolvePartition(u.Table)
			if err != nil {
				return nil, fmt.Errorf("core: cluster recover: redo lsn %d: %w", u.LSN, err)
			}
			tabs[u.Table] = tab
		}
		if int64(u.PageIdx) >= tab.Pages {
			return nil, fmt.Errorf("core: cluster recover: redo lsn %d: page %d beyond %q (%d pages)",
				u.LSN, u.PageIdx, u.Table, tab.Pages)
		}
		k := pageKey{u.Table, u.PageIdx}
		buf, ok := repaired[k]
		if !ok {
			pc := tab.Dev.(partitionCopies)
			data, _, err := pc.copies[0].dev.ReadPage(tab.StartLBA+int64(u.PageIdx), 0)
			if err != nil {
				return nil, fmt.Errorf("core: cluster recover: read %q page %d: %w", u.Table, u.PageIdx, err)
			}
			buf = append([]byte(nil), data...)
			repaired[k] = buf
			order = append(order, k)
		}
		if err := page.ReplaceTuple(tab.Schema, buf, int(u.Slot), u.Tuple); err != nil {
			return nil, fmt.Errorf("core: cluster recover: redo lsn %d: %w", u.LSN, err)
		}
		rep.UpdatesApplied++
	}
	for _, k := range order {
		tab := tabs[k.part]
		pc := tab.Dev.(partitionCopies)
		for _, cp := range pc.copies {
			if err := cp.dev.RestorePage(cp.start+int64(k.idx), repaired[k]); err != nil {
				return nil, fmt.Errorf("core: cluster recover: repair %q page %d: %w", k.part, k.idx, err)
			}
		}
		rep.PagesRepaired++
	}

	if err := log.Reset(); err != nil {
		return nil, err
	}
	c.walLog = log
	c.txns = txn.NewManager(log, c.resolvePartition)
	c.resetTimingLocked()
	return rep, nil
}
