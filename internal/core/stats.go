package core

import "smartssd/internal/schema"

// ColumnStats is the catalog's per-column value summary, collected
// while a table loads: the observed min and max of every integer-valued
// column (Int32, Int64, Date). Char columns and tables restored from a
// device image (which bypasses Load) report Known false. The SQL
// planner's selectivity estimator turns these ranges into predicate
// selectivities; absent stats it falls back to fixed heuristics.
type ColumnStats struct {
	// Known reports whether any value was observed for this column.
	Known bool
	// Min and Max bound the observed values (integer encoding: dates as
	// epoch days, decimals in their x100 scaling).
	Min, Max int64
}

// statsAccumulator folds loaded tuples into per-column ranges.
type statsAccumulator struct {
	s    *schema.Schema
	cols []ColumnStats
}

func newStatsAccumulator(s *schema.Schema, prior []ColumnStats) *statsAccumulator {
	cols := prior
	if len(cols) != s.NumColumns() {
		cols = make([]ColumnStats, s.NumColumns())
	}
	return &statsAccumulator{s: s, cols: cols}
}

// observe folds one tuple. Char columns stay unknown: range stats over
// byte strings have no consumer in the cost model.
func (a *statsAccumulator) observe(t schema.Tuple) {
	for i := range a.cols {
		if a.s.Column(i).Kind == schema.Char {
			continue
		}
		v := t[i].Int
		c := &a.cols[i]
		if !c.Known {
			c.Known, c.Min, c.Max = true, v, v
			continue
		}
		if v < c.Min {
			c.Min = v
		}
		if v > c.Max {
			c.Max = v
		}
	}
}

// copyColumnStats deep-copies a stats table (Clone must not alias the
// base engine's accumulators, which a later Load would keep mutating).
func copyColumnStats(src map[string][]ColumnStats) map[string][]ColumnStats {
	dst := make(map[string][]ColumnStats, len(src))
	for name, cols := range src {
		cp := make([]ColumnStats, len(cols))
		copy(cp, cols)
		dst[name] = cp
	}
	return dst
}

// TableStats reports the per-column ranges observed while name loaded,
// in schema column order. ok is false for unknown tables and for tables
// that never went through Load (image-restored engines).
func (e *Engine) TableStats(name string) ([]ColumnStats, bool) {
	cols, ok := e.stats[name]
	if !ok {
		return nil, false
	}
	return append([]ColumnStats(nil), cols...), true
}

// TableStats reports the per-column ranges observed while name loaded
// across all partitions (and replicas, which hold the same rows).
func (c *Cluster) TableStats(name string) ([]ColumnStats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cols, ok := c.stats[name]
	if !ok {
		return nil, false
	}
	return append([]ColumnStats(nil), cols...), true
}
