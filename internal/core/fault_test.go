package core

import (
	"errors"
	"testing"
	"time"

	"smartssd/internal/device"
	"smartssd/internal/expr"
	"smartssd/internal/fault"
	"smartssd/internal/page"
	"smartssd/internal/plan"
	"smartssd/internal/schema"
)

func newFaultyEngine(t *testing.T, fc fault.Config) *Engine {
	t.Helper()
	p := smallSSD()
	p.Fault = fc
	e, err := New(Config{SSD: p})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func requireSameRows(t *testing.T, want, got []schema.Tuple) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("row counts: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			t.Fatalf("row %d widths differ", i)
		}
		for c := range want[i] {
			wv, gv := want[i][c], got[i][c]
			if wv.Bytes != nil || gv.Bytes != nil {
				if string(wv.Bytes) != string(gv.Bytes) {
					t.Fatalf("row %d col %d: want %q, got %q", i, c, wv.Bytes, gv.Bytes)
				}
			} else if wv.Int != gv.Int {
				t.Fatalf("row %d col %d: want %d, got %d", i, c, wv.Int, gv.Int)
			}
		}
	}
}

// The acceptance bar for graceful degradation: a pushdown whose device
// sessions always abort must return results bit-identical to a clean
// host run, with the retry/fallback ladder accounted exactly.
func TestFallbackEquivalenceToCleanHostRun(t *testing.T) {
	clean := newEngine(t)
	loadFact(t, clean, page.PAX, 30000, OnSSD)
	host, err := clean.Run(selectiveSpec(), ForceHost)
	if err != nil {
		t.Fatal(err)
	}

	e := newFaultyEngine(t, fault.Config{Seed: 9, SessionAbortRate: 1})
	loadFact(t, e, page.PAX, 30000, OnSSD)
	res, err := e.Run(selectiveSpec(), ForceDevice)
	if err != nil {
		t.Fatalf("faulted run should fall back, not fail: %v", err)
	}
	requireSameRows(t, host.Rows, res.Rows)
	if res.Placement != RanHost {
		t.Fatalf("Placement = %v, want RanHost after fallback", res.Placement)
	}

	// Exact ladder accounting: default MaxDeviceRetries is 2, so three
	// attempts abort (one injected abort each), with doubling backoff
	// 5ms + 10ms between them.
	f := res.Faults
	if f.DeviceAttempts != 3 {
		t.Fatalf("DeviceAttempts = %d, want 3", f.DeviceAttempts)
	}
	if !f.HostFallback || f.FallbackReason != "session-abort" {
		t.Fatalf("fallback = %v (%q), want host fallback for session-abort",
			f.HostFallback, f.FallbackReason)
	}
	if f.SessionAborts != 3 {
		t.Fatalf("SessionAborts = %d, want 3", f.SessionAborts)
	}
	if want := 15 * time.Millisecond; f.BackoffWait != want {
		t.Fatalf("BackoffWait = %v, want %v", f.BackoffWait, want)
	}
	// Sessions abort on their first GET, before the program runs, so
	// the failed attempts cost exactly the backoff: elapsed is the
	// clean host time plus the 15ms ladder, to the nanosecond.
	if want := host.Elapsed + f.BackoffWait; res.Elapsed != want {
		t.Fatalf("faulted elapsed %v, want clean host %v + backoff %v",
			res.Elapsed, host.Elapsed, f.BackoffWait)
	}
	// No sessions or grants leak across the aborted attempts.
	if n := e.runtime.OpenSessions(); n != 0 {
		t.Fatalf("%d sessions leaked across aborted attempts", n)
	}
	if g := e.runtime.GrantedBytes(); g != 0 {
		t.Fatalf("%d grant bytes leaked across aborted attempts", g)
	}
}

// Opting out of fallback surfaces the typed fault after the retries.
func TestRetryExhaustionSurfacesWhenFallbackDisabled(t *testing.T) {
	p := smallSSD()
	p.Fault = fault.Config{Seed: 9, SessionAbortRate: 1}
	e, err := New(Config{SSD: p, DisableFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	loadFact(t, e, page.PAX, 30000, OnSSD)
	_, err = e.Run(selectiveSpec(), ForceDevice)
	if !errors.Is(err, device.ErrSessionAborted) {
		t.Fatalf("err = %v, want wrapped ErrSessionAborted", err)
	}
}

// Hung GETs charge the watchdog wait to the run and fall back.
func TestGetTimeoutFallsBackAndChargesWait(t *testing.T) {
	e := newFaultyEngine(t, fault.Config{Seed: 4, GetTimeoutRate: 1})
	loadFact(t, e, page.PAX, 30000, OnSSD)
	res, err := e.Run(selectiveSpec(), ForceDevice)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Faults
	if !f.HostFallback || f.FallbackReason != "get-timeout" {
		t.Fatalf("fallback = %v (%q), want get-timeout", f.HostFallback, f.FallbackReason)
	}
	// Three attempts, each hung on its first GET for the default 10ms
	// watchdog period.
	if f.GetTimeouts != 3 {
		t.Fatalf("GetTimeouts = %d, want 3", f.GetTimeouts)
	}
	if want := 30 * time.Millisecond; f.TimeoutWait != want {
		t.Fatalf("TimeoutWait = %v, want %v", f.TimeoutWait, want)
	}
}

// A hybrid run whose device half faults degrades to the pure host path
// with the same rows.
func TestHybridFallsBackOnDeviceFault(t *testing.T) {
	clean := newEngine(t)
	loadFact(t, clean, page.PAX, 30000, OnSSD)
	host, err := clean.Run(selectiveSpec(), ForceHost)
	if err != nil {
		t.Fatal(err)
	}
	e := newFaultyEngine(t, fault.Config{Seed: 6, SessionAbortRate: 1})
	loadFact(t, e, page.PAX, 30000, OnSSD)
	res, err := e.Run(selectiveSpec(), ForceHybrid)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRows(t, host.Rows, res.Rows)
	if !res.Faults.HostFallback {
		t.Fatal("hybrid device fault did not report a host fallback")
	}
}

// clusterFixture builds an n-device cluster over the shared fact
// fixture with k-way replication and returns it with its query.
func clusterFixture(t *testing.T, n, k int) (*Cluster, ClusterQuery) {
	t.Helper()
	const rows = 30000
	p := smallSSD()
	p.Fault = fault.Config{Armed: true}
	cl, err := NewCluster(n, p, device.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	cl.SetReplication(k)
	s := widePaddedSchema()
	if err := cl.CreateTable("fact", s, page.PAX, 1024); err != nil {
		t.Fatal(err)
	}
	i := 0
	err = cl.Load("fact", func() (schema.Tuple, bool) {
		if i >= rows {
			return nil, false
		}
		tup := schema.Tuple{
			schema.IntVal(int64(i)),
			schema.IntVal(int64(i % 40)),
			schema.IntVal(int64(i % 100)),
			schema.StrVal("pad"),
		}
		i++
		return tup, true
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl, ClusterQuery{
		Table:  "fact",
		Filter: expr.Cmp{Op: expr.LT, L: expr.ColRef(s, "val"), R: expr.IntConst(30)},
		Aggs: []plan.AggSpec{
			{Kind: plan.Sum, E: expr.ColRef(s, "id"), Name: "sum_id"},
			{Kind: plan.Count, Name: "cnt"},
		},
	}
}

// With replication, losing a device re-executes its partition on the
// chained replica and the merged result is unchanged.
func TestClusterFailoverToReplica(t *testing.T) {
	cl, q := clusterFixture(t, 4, 2)
	before, err := cl.Run(q)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if before.Failovers != 0 {
		t.Fatalf("clean run reported %d failovers", before.Failovers)
	}
	cl.Device(2).Injector().KillDevice()
	after, err := cl.Run(q)
	if err != nil {
		t.Fatalf("run with dead worker 2: %v", err)
	}
	requireSameRows(t, before.Rows, after.Rows)
	if after.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1", after.Failovers)
	}
	if len(after.FailedWorkers) != 0 {
		t.Fatalf("FailedWorkers = %v, want none", after.FailedWorkers)
	}
	if after.PerDevice[2] <= 0 {
		t.Fatal("failed-over partition reported no completion time")
	}
}

// When replication and fallback fire in the same run, the accounting
// fields pin the exact story: every execution attempt is counted, and
// every abandoned primary records why it was abandoned. Three workers,
// two copies each, devices 1 and 2 dead: worker 0 succeeds first try;
// worker 1's replica lives on dead device 2, so its partition is lost
// after two attempts; worker 2's replica lives on healthy device 0, so
// it fails over after two attempts.
func TestClusterAttemptAndReasonAccounting(t *testing.T) {
	cl, q := clusterFixture(t, 3, 2)
	clean, err := cl.Run(q)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if clean.Attempts != 3 {
		t.Fatalf("clean Attempts = %d, want one per worker", clean.Attempts)
	}
	if clean.FailoverReasons != nil {
		t.Fatalf("clean FailoverReasons = %v, want nil", clean.FailoverReasons)
	}

	cl.Device(1).Injector().KillDevice()
	cl.Device(2).Injector().KillDevice()
	res, err := cl.Run(q)
	if !errors.Is(err, ErrPartialResult) {
		t.Fatalf("err = %v, want ErrPartialResult (worker 1's copies are both dead)", err)
	}
	// 1 (worker 0) + 2 (worker 1: primary + dead replica) + 2 (worker 2:
	// primary + live replica).
	if res.Attempts != 5 {
		t.Errorf("Attempts = %d, want 5", res.Attempts)
	}
	if res.Failovers != 1 {
		t.Errorf("Failovers = %d, want 1 (only worker 2 recovered)", res.Failovers)
	}
	if len(res.FailedWorkers) != 1 || res.FailedWorkers[0] != 1 {
		t.Errorf("FailedWorkers = %v, want [1]", res.FailedWorkers)
	}
	want := map[int]string{1: "device-failed", 2: "device-failed"}
	if len(res.FailoverReasons) != len(want) {
		t.Fatalf("FailoverReasons = %v, want %v", res.FailoverReasons, want)
	}
	for w, reason := range want {
		if got := res.FailoverReasons[w]; got != reason {
			t.Errorf("FailoverReasons[%d] = %q, want %q", w, got, reason)
		}
	}
	// Workers 0 and 2 contributed; worker 1's third of the data is
	// missing, so the count lands strictly between zero and the full
	// answer.
	if got, full := res.Rows[0][1].Int, clean.Rows[0][1].Int; got <= 0 || got >= full {
		t.Errorf("partial count = %d, want in (0, %d)", got, full)
	}
}

// Without replication a dead device's partition is lost: the run
// returns its partial result together with a typed PartialResultError.
func TestClusterPartialResultWithoutReplicas(t *testing.T) {
	cl, q := clusterFixture(t, 2, 1)
	clean, err := cl.Run(q)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	cl.Device(0).Injector().KillDevice()
	res, err := cl.Run(q)
	if err == nil {
		t.Fatal("run with lost partition returned no error")
	}
	if !errors.Is(err, ErrPartialResult) {
		t.Fatalf("errors.Is(err, ErrPartialResult) = false for %v", err)
	}
	if !errors.Is(err, device.ErrDeviceFailed) {
		t.Fatalf("partial error does not unwrap to the device fault: %v", err)
	}
	var pre *PartialResultError
	if !errors.As(err, &pre) {
		t.Fatalf("errors.As(*PartialResultError) = false for %v", err)
	}
	if len(pre.Failed) != 1 || pre.Failed[0] != 0 {
		t.Fatalf("Failed = %v, want [0]", pre.Failed)
	}
	if res == nil || len(res.Rows) != 1 {
		t.Fatalf("partial result rows = %v, want surviving worker's aggregate", res)
	}
	// The surviving worker's partial sum is strictly below the full
	// answer (worker 0's contribution is missing).
	if got, full := res.Rows[0][1].Int, clean.Rows[0][1].Int; got <= 0 || got >= full {
		t.Fatalf("partial count = %d, want in (0, %d)", got, full)
	}
}
