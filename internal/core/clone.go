package core

import (
	"errors"
	"fmt"
	"sort"

	"smartssd/internal/bufpool"
	"smartssd/internal/device"
	"smartssd/internal/exec"
	"smartssd/internal/hdd"
	"smartssd/internal/heap"
	"smartssd/internal/opt"
)

// Clone returns an engine that shares the receiver's loaded data but
// nothing a query run can mutate. The expensive state — generated
// tuples stored in NAND page buffers and HDD page buffers — is shared
// (both devices treat stored buffers as immutable), while every mutable
// layer is freshly built or deep-copied: device timing servers and
// clocks, FTL mapping tables, fault-injector stream positions, the host
// CPU, the buffer pool, the Smart SSD runtime, and the catalog.
//
// A cold run on a clone is byte-identical to the same cold run on the
// receiver (see TestEngineEquivalence), which is what lets the runner
// harness fan independent runs of one loaded engine across workers.
// Tracer and recorder hooks are not carried over: clones run untraced.
func (e *Engine) Clone() (*Engine, error) {
	sdev := e.ssd.Clone()
	var hdev *hdd.Device
	if e.hdd != nil {
		hdev = e.hdd.Clone()
	}
	ne := &Engine{
		cfg:        e.cfg,
		ssd:        sdev,
		hdd:        hdev,
		host:       exec.NewHost(e.cfg.HostHz, e.cfg.HostCores),
		runtime:    device.NewRuntime(sdev, e.cfg.DeviceCost),
		planner:    opt.NewPlanner(e.cfg.DeviceCost),
		tables:     make(map[string]*Table, len(e.tables)),
		stats:      copyColumnStats(e.stats),
		cold:       e.cold,
		hybridAuto: e.hybridAuto,
		scalarExec: e.scalarExec,
		batchRows:  e.batchRows,
	}
	ne.host.Cost = e.host.Cost
	ne.runtime.SetExecTuning(e.scalarExec)
	ne.pool = bufpool.New(e.cfg.PoolPages, func(lba int64, data []byte) error {
		_, err := sdev.WritePage(lba, data, 0)
		return err
	})
	ne.ssdAlloc.Restore(e.ssdAlloc.Used())
	ne.hddAlloc.Restore(e.hddAlloc.Used())
	names := make([]string, 0, len(e.tables))
	for name := range e.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := e.tables[name]
		f := t.File
		var dev heap.BlockDevice
		switch t.Target {
		case OnSSD:
			dev = sdev
		case OnHDD:
			if hdev == nil {
				return nil, errors.New("core: clone: table on disabled HDD")
			}
			dev = hdev
		default:
			return nil, fmt.Errorf("core: clone: unknown target %d", t.Target)
		}
		ne.tables[name] = &Table{
			File: heap.Open(name, dev, f.Schema(), f.Layout(),
				f.StartLBA(), f.Pages(), f.MaxPages(), f.TupleCount()),
			Target: t.Target,
		}
	}
	ne.markRunBaseline()
	return ne, nil
}
