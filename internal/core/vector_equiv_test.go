package core

import (
	"fmt"
	"math/rand"
	"testing"

	"smartssd/internal/expr"
	"smartssd/internal/page"
	"smartssd/internal/plan"
)

// vectorSettings are the executor tunings the equivalence properties
// sweep: the scalar reference, the vectorized default (whole-page
// batches), a degenerate one-row batch, a mid-size batch, and a batch
// far above any page's tuple capacity.
var vectorSettings = []struct {
	name      string
	scalar    bool
	batchRows int
}{
	{"scalar", true, 0},
	{"vec-page", false, 0},
	{"vec-batch1", false, 1},
	{"vec-batch7", false, 7},
	{"vec-batch1M", false, 1 << 20},
}

// TestVectorizedScalarEquivalenceProperty is the vectorized executor's
// contract: for random queries in the supported class, every executor
// tuning — scalar, page batches, batch size 1, an odd mid-size batch,
// and a batch larger than any page — produces a byte-identical Result
// on both paths: rows, virtual elapsed time, energy, host CPU stats,
// and the full per-resource report. Batching is a wall-clock
// optimization only; the simulated timeline must not feel it.
func TestVectorizedScalarEquivalenceProperty(t *testing.T) {
	const trials = 12
	rng := rand.New(rand.NewSource(20130622))

	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			layout := page.NSM
			if rng.Intn(2) == 1 {
				layout = page.PAX
			}
			e := newEngine(t)
			nFact := 2000 + rng.Intn(4000)
			nDim := 5 + rng.Intn(60)
			loadRandomTables(t, e, rng, layout, nFact, nDim)
			spec := randomSpec(rng, nDim)

			for _, mode := range []Mode{ForceHost, ForceDevice} {
				var want string
				for _, s := range vectorSettings {
					// A fresh clone per setting: each run sees the same
					// cold simulator state, so fingerprints compare
					// timing and utilization too, not just rows.
					c, err := e.Clone()
					if err != nil {
						t.Fatal(err)
					}
					c.SetExecTuning(s.scalar, s.batchRows)
					got := resultFingerprint(mustRun(t, c, spec, mode))
					if s.scalar {
						want = got
						continue
					}
					if got != want {
						t.Fatalf("mode %v setting %s diverged from scalar (spec %+v):\n--- scalar ---\n%s--- %s ---\n%s",
							mode, s.name, spec, want, s.name, got)
					}
				}
			}
		})
	}
}

// TestVectorizedEmptySelectionEquivalence pins the all-rows-filtered
// edge: a predicate no tuple satisfies leaves every selection vector
// empty, and the vectorized paths must still charge the scan exactly
// like the scalar loop does (page and per-tuple cycles are spent
// whether or not anything qualifies).
func TestVectorizedEmptySelectionEquivalence(t *testing.T) {
	fact := randomFactSchema()
	impossible := expr.Cmp{Op: expr.LT, L: expr.ColRef(fact, "v1"), R: expr.IntConst(-1)}
	specs := []struct {
		name string
		spec QuerySpec
	}{
		{"agg", QuerySpec{
			Table:  "fact",
			Filter: impossible,
			Aggs: []plan.AggSpec{
				{Kind: plan.Sum, E: expr.ColRef(fact, "v2"), Name: "s"},
				{Kind: plan.Count, Name: "c"},
			},
			EstSelectivity: 0.01,
		}},
		{"project", QuerySpec{
			Table:  "fact",
			Filter: impossible,
			Output: []plan.OutputCol{
				{Name: "id", E: expr.ColRef(fact, "id")},
			},
			EstSelectivity: 0.01,
		}},
		{"join-agg", QuerySpec{
			Table:  "fact",
			Join:   &JoinClause{BuildTable: "dim", BuildKey: "d_key", ProbeKey: "k"},
			Filter: impossible,
			Aggs: []plan.AggSpec{
				{Kind: plan.Count, Name: "c"},
			},
			EstSelectivity: 0.01,
		}},
	}

	for _, layout := range []page.Layout{page.NSM, page.PAX} {
		e := newEngine(t)
		rng := rand.New(rand.NewSource(7))
		loadRandomTables(t, e, rng, layout, 3000, 16)
		for _, sp := range specs {
			sp := sp
			t.Run(fmt.Sprintf("%v/%s", layout, sp.name), func(t *testing.T) {
				for _, mode := range []Mode{ForceHost, ForceDevice} {
					var want string
					for _, s := range vectorSettings {
						c, err := e.Clone()
						if err != nil {
							t.Fatal(err)
						}
						c.SetExecTuning(s.scalar, s.batchRows)
						res := mustRun(t, c, sp.spec, mode)
						if len(sp.spec.Output) > 0 && len(res.Rows) != 0 {
							t.Fatalf("impossible predicate returned %d rows", len(res.Rows))
						}
						got := resultFingerprint(res)
						if s.scalar {
							want = got
							continue
						}
						if got != want {
							t.Fatalf("mode %v setting %s diverged on empty selection:\n--- scalar ---\n%s--- %s ---\n%s",
								mode, s.name, want, s.name, got)
						}
					}
				}
			})
		}
	}
}

// TestVectorizedQ6StyleEquivalence runs randomized Q6-shaped predicates
// (conjunctive range bands plus an arithmetic term, SUM/COUNT on top)
// across all executor tunings. This is the workload class the
// vectorized executor optimizes hardest — fused compare kernels over a
// selective conjunction — so it gets its own denser property sweep.
func TestVectorizedQ6StyleEquivalence(t *testing.T) {
	const trials = 10
	rng := rand.New(rand.NewSource(1))
	fact := randomFactSchema()

	e := newEngine(t)
	loadRandomTables(t, e, rand.New(rand.NewSource(99)), page.NSM, 6000, 25)

	for trial := 0; trial < trials; trial++ {
		trial := trial
		lo := rng.Int63n(900)
		hi := lo + 1 + rng.Int63n(1000-lo)
		spec := QuerySpec{
			Table: "fact",
			Filter: expr.And{Terms: []expr.Expr{
				expr.Cmp{Op: expr.GE, L: expr.ColRef(fact, "v1"), R: expr.IntConst(lo)},
				expr.Cmp{Op: expr.LT, L: expr.ColRef(fact, "v1"), R: expr.IntConst(hi)},
				expr.Cmp{Op: expr.NE,
					L: expr.Arith{Op: expr.Mul, L: expr.ColRef(fact, "k"), R: expr.IntConst(2)},
					R: expr.IntConst(rng.Int63n(50))},
			}},
			Aggs: []plan.AggSpec{
				{Kind: plan.Sum, E: expr.Arith{Op: expr.Mul, L: expr.ColRef(fact, "v1"), R: expr.ColRef(fact, "v2")}, Name: "rev"},
				{Kind: plan.Count, Name: "c"},
			},
			EstSelectivity: float64(hi-lo) / 1000,
		}
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			for _, mode := range []Mode{ForceHost, ForceDevice} {
				var want string
				for _, s := range vectorSettings {
					c, err := e.Clone()
					if err != nil {
						t.Fatal(err)
					}
					c.SetExecTuning(s.scalar, s.batchRows)
					got := resultFingerprint(mustRun(t, c, spec, mode))
					if s.scalar {
						want = got
						continue
					}
					if got != want {
						t.Fatalf("mode %v setting %s diverged (band [%d,%d)):\n--- scalar ---\n%s--- %s ---\n%s",
							mode, s.name, lo, hi, want, s.name, got)
					}
				}
			}
		})
	}
}
