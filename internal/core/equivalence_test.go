package core

import (
	"fmt"
	"math/rand"
	"testing"

	"smartssd/internal/expr"
	"smartssd/internal/fault"
	"smartssd/internal/page"
	"smartssd/internal/plan"
	"smartssd/internal/schema"
)

// TestHostDeviceEquivalenceProperty runs randomly generated queries in
// the supported class on both paths and requires bit-identical results:
// the in-device programs and the host operators must implement the same
// semantics, whatever the timing model says.
func TestHostDeviceEquivalenceProperty(t *testing.T) {
	const trials = 25
	rng := rand.New(rand.NewSource(20130622)) // SIGMOD'13 week

	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			layout := page.NSM
			if rng.Intn(2) == 1 {
				layout = page.PAX
			}
			e := newEngine(t)
			nFact := 2000 + rng.Intn(6000)
			nDim := 5 + rng.Intn(60)
			loadRandomTables(t, e, rng, layout, nFact, nDim)
			spec := randomSpec(rng, nDim)

			host, err := e.Run(spec, ForceHost)
			if err != nil {
				t.Fatalf("host: %v (spec %+v)", err, spec)
			}
			dev, err := e.Run(spec, ForceDevice)
			if err != nil {
				t.Fatalf("device: %v (spec %+v)", err, spec)
			}
			if len(host.Rows) != len(dev.Rows) {
				t.Fatalf("row counts: host %d, device %d (spec %+v)",
					len(host.Rows), len(dev.Rows), spec)
			}
			for i := range host.Rows {
				if len(host.Rows[i]) != len(dev.Rows[i]) {
					t.Fatalf("row %d widths differ", i)
				}
				for c := range host.Rows[i] {
					hv, dv := host.Rows[i][c], dev.Rows[i][c]
					if hv.Bytes != nil || dv.Bytes != nil {
						if string(hv.Bytes) != string(dv.Bytes) {
							t.Fatalf("row %d col %d: host %q, device %q", i, c, hv.Bytes, dv.Bytes)
						}
					} else if hv.Int != dv.Int {
						t.Fatalf("row %d col %d: host %d, device %d", i, c, hv.Int, dv.Int)
					}
				}
			}
		})
	}
}

// TestFallbackEquivalenceProperty is the degradation counterpart of the
// host/device property above: random queries run on an engine whose
// device sessions always abort, so every pushdown walks the full retry
// ladder and falls back to the host — and must still return results
// bit-identical to a clean host run of the same query.
func TestFallbackEquivalenceProperty(t *testing.T) {
	const trials = 10
	rng := rand.New(rand.NewSource(20130622))

	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			layout := page.NSM
			if rng.Intn(2) == 1 {
				layout = page.PAX
			}
			nFact := 2000 + rng.Intn(6000)
			nDim := 5 + rng.Intn(60)
			spec := randomSpec(rng, nDim)
			// Same seed → same data on both engines.
			dataSeed := rng.Int63()

			clean := newEngine(t)
			loadRandomTables(t, clean, rand.New(rand.NewSource(dataSeed)), layout, nFact, nDim)
			host, err := clean.Run(spec, ForceHost)
			if err != nil {
				t.Fatalf("host: %v (spec %+v)", err, spec)
			}

			faulty := newFaultyEngine(t, fault.Config{Seed: int64(trial) + 1, SessionAbortRate: 1})
			loadRandomTables(t, faulty, rand.New(rand.NewSource(dataSeed)), layout, nFact, nDim)
			res, err := faulty.Run(spec, ForceDevice)
			if err != nil {
				t.Fatalf("faulted device run: %v (spec %+v)", err, spec)
			}
			if !res.Faults.HostFallback || res.Faults.DeviceAttempts != 3 {
				t.Fatalf("expected 3 attempts then fallback, got %+v", res.Faults)
			}
			requireSameRows(t, host.Rows, res.Rows)
		})
	}
}

// Random fixture: fact(id, k, v1, v2, tag, pad) and dim(d_key, d_val).
func randomFactSchema() *schema.Schema {
	return schema.New(
		schema.Column{Name: "id", Kind: schema.Int64},
		schema.Column{Name: "k", Kind: schema.Int32},
		schema.Column{Name: "v1", Kind: schema.Int32},
		schema.Column{Name: "v2", Kind: schema.Int64},
		schema.Column{Name: "tag", Kind: schema.Char, Len: 8},
		schema.Column{Name: "pad", Kind: schema.Char, Len: 80},
	)
}

func randomDimSchema() *schema.Schema {
	return schema.New(
		schema.Column{Name: "d_key", Kind: schema.Int32},
		schema.Column{Name: "d_val", Kind: schema.Int64},
	)
}

func loadRandomTables(t *testing.T, e *Engine, rng *rand.Rand, l page.Layout, nFact, nDim int) {
	t.Helper()
	if _, err := e.CreateTable("fact", randomFactSchema(), l, 2048, OnSSD); err != nil {
		t.Fatal(err)
	}
	tags := []string{"alpha", "beta", "gamma", "PROMO x", "delta"}
	i := 0
	err := e.Load("fact", func() (schema.Tuple, bool) {
		if i >= nFact {
			return nil, false
		}
		tup := schema.Tuple{
			schema.IntVal(int64(i)),
			schema.IntVal(rng.Int63n(int64(nDim))),
			schema.IntVal(rng.Int63n(1000)),
			schema.IntVal(rng.Int63n(1 << 30)),
			schema.StrVal(tags[rng.Intn(len(tags))]),
			schema.StrVal("pad"),
		}
		i++
		return tup, true
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateTable("dim", randomDimSchema(), l, 16, OnSSD); err != nil {
		t.Fatal(err)
	}
	j := 0
	err = e.Load("dim", func() (schema.Tuple, bool) {
		if j >= nDim {
			return nil, false
		}
		tup := schema.Tuple{schema.IntVal(int64(j)), schema.IntVal(rng.Int63n(1 << 20))}
		j++
		return tup, true
	})
	if err != nil {
		t.Fatal(err)
	}
}

// randomSpec generates a query in the supported class over the random
// fixture: optional join, random conjunctive predicate, and either a
// projection, a scalar aggregate, or a grouped aggregate.
func randomSpec(rng *rand.Rand, nDim int) QuerySpec {
	fact := randomFactSchema()
	np := fact.NumColumns()
	spec := QuerySpec{Table: "fact", EstSelectivity: 0.2}

	withJoin := rng.Intn(2) == 1
	if withJoin {
		spec.Join = &JoinClause{BuildTable: "dim", BuildKey: "d_key", ProbeKey: "k"}
	}

	// Random predicate: 0-3 conjunctive terms over fact columns.
	var terms []expr.Expr
	if rng.Intn(4) > 0 {
		terms = append(terms, expr.Cmp{
			Op: []expr.CmpOp{expr.LT, expr.LE, expr.GT, expr.GE}[rng.Intn(4)],
			L:  expr.ColRef(fact, "v1"),
			R:  expr.IntConst(rng.Int63n(1000)),
		})
	}
	if rng.Intn(3) == 0 {
		terms = append(terms, expr.LikePrefix{E: expr.ColRef(fact, "tag"), Prefix: "PROMO"})
	}
	if rng.Intn(3) == 0 {
		terms = append(terms, expr.Cmp{
			Op: expr.NE,
			L:  expr.Arith{Op: expr.Add, L: expr.ColRef(fact, "k"), R: expr.IntConst(1)},
			R:  expr.IntConst(rng.Int63n(int64(nDim) + 1)),
		})
	}
	switch len(terms) {
	case 0:
	case 1:
		spec.Filter = terms[0]
	default:
		spec.Filter = expr.And{Terms: terms}
	}

	// Output shape.
	switch rng.Intn(3) {
	case 0: // projection
		cols := []plan.OutputCol{
			{Name: "id", E: expr.ColRef(fact, "id")},
			{Name: "expr", E: expr.Arith{Op: expr.Mul, L: expr.ColRef(fact, "v1"), R: expr.IntConst(3)}},
		}
		if withJoin {
			cols = append(cols, plan.OutputCol{
				Name: "d_val",
				E:    expr.Col{Index: np + 1, Name: "d_val", K: schema.Int64},
			})
		}
		spec.Output = cols
	case 1: // scalar aggregate
		aggs := []plan.AggSpec{
			{Kind: plan.Sum, E: expr.ColRef(fact, "v2"), Name: "s"},
			{Kind: plan.Count, Name: "c"},
			{Kind: plan.Min, E: expr.ColRef(fact, "v1"), Name: "mn"},
			{Kind: plan.Max, E: expr.ColRef(fact, "id"), Name: "mx"},
		}
		if withJoin {
			aggs = append(aggs, plan.AggSpec{
				Kind: plan.Sum,
				E:    expr.Col{Index: np + 1, Name: "d_val", K: schema.Int64},
				Name: "sd",
			})
		}
		spec.Aggs = aggs
	default: // grouped aggregate on tag
		spec.GroupBy = []int{fact.MustColumnIndex("tag")}
		spec.Aggs = []plan.AggSpec{
			{Kind: plan.Count, Name: "c"},
			{Kind: plan.Sum, E: expr.ColRef(fact, "v1"), Name: "s"},
		}
	}
	return spec
}
