package core

import (
	"testing"
	"time"

	"smartssd/internal/page"
	"smartssd/internal/schema"
	"smartssd/internal/synth"
	"smartssd/internal/tpch"
)

// loadGenerated creates a table and loads it from a generator, the way
// the experiments package loads its datasets.
func loadGenerated(t *testing.T, e *Engine, name string, s *schema.Schema, layout page.Layout, rows int64, gen func() (schema.Tuple, bool)) {
	t.Helper()
	cap64 := int64(page.Capacity(s, layout))
	if _, err := e.CreateTable(name, s, layout, rows/cap64+2, OnSSD); err != nil {
		t.Fatal(err)
	}
	if err := e.Load(name, gen); err != nil {
		t.Fatal(err)
	}
}

// checkReportInvariants asserts the physical laws every ResourceReport
// must satisfy regardless of query or placement: utilizations within
// [0, 1], per-lane busy time within the elapsed window, non-negative
// queueing, and a bottleneck that actually served work.
func checkReportInvariants(t *testing.T, name string, res *Result) {
	t.Helper()
	rep := res.Resources
	if len(rep.Resources) == 0 {
		t.Fatalf("%s: empty resource report", name)
	}
	for _, r := range rep.Resources {
		if r.Utilization < 0 || r.Utilization > 1 {
			t.Errorf("%s: %s utilization %.4f outside [0,1]", name, r.Name, r.Utilization)
		}
		if lane := r.Busy / time.Duration(r.Lanes); lane > res.Elapsed {
			t.Errorf("%s: %s per-lane busy %v exceeds elapsed %v", name, r.Name, lane, res.Elapsed)
		}
		if r.TotalWait < 0 || r.MaxWait < 0 || r.MaxWait > r.TotalWait {
			t.Errorf("%s: %s wait counters inconsistent: total %v max %v", name, r.Name, r.TotalWait, r.MaxWait)
		}
		if r.Used && r.Ops == 0 {
			t.Errorf("%s: %s marked used but served no requests", name, r.Name)
		}
	}
	if rep.Bottleneck == "" {
		t.Errorf("%s: no bottleneck identified", name)
	} else if b, ok := rep.Resource(rep.Bottleneck); !ok || !b.Used {
		t.Errorf("%s: bottleneck %q missing or idle", name, rep.Bottleneck)
	}
}

// linkBytes reports the bytes a run moved over the host interface.
func linkBytes(t *testing.T, name string, res *Result) int64 {
	t.Helper()
	link, ok := res.Resources.Resource("host-link")
	if !ok {
		t.Fatalf("%s: no host-link resource", name)
	}
	return link.Units
}

// TestResourceReportEquivalence runs the paper's three workload shapes
// — Q6 (selection+aggregation), Q14 (join+aggregation), and the
// Synthetic64 selection-with-join — on the host and device paths, and
// checks that the resource accounting obeys its invariants and tells
// the paper's story: pushing a query down can only shrink the traffic
// on the host link, and only the device path burns device CPU.
func TestResourceReportEquivalence(t *testing.T) {
	li := tpch.LineitemSchema()
	pa := tpch.PartSchema()
	const sf = 0.005

	cases := []struct {
		name string
		load func(t *testing.T, e *Engine)
		spec QuerySpec
	}{
		{
			name: "q6",
			load: func(t *testing.T, e *Engine) {
				loadGenerated(t, e, "lineitem", li, page.PAX, tpch.NumLineitem(sf), tpch.NewLineitemGen(sf, 1).Next)
			},
			spec: QuerySpec{
				Table:          "lineitem",
				Filter:         tpch.Q6Predicate(),
				Aggs:           tpch.Q6Aggregates(),
				EstSelectivity: 0.006,
			},
		},
		{
			name: "q14",
			load: func(t *testing.T, e *Engine) {
				loadGenerated(t, e, "lineitem", li, page.PAX, tpch.NumLineitem(sf), tpch.NewLineitemGen(sf, 1).Next)
				loadGenerated(t, e, "part", pa, page.PAX, tpch.NumPart(sf), tpch.NewPartGen(sf, 2).Next)
			},
			spec: QuerySpec{
				Table:          "lineitem",
				Join:           &JoinClause{BuildTable: "part", BuildKey: "p_partkey", ProbeKey: "l_partkey"},
				Filter:         tpch.Q14DateRange(),
				Aggs:           tpch.Q14Aggregates(li, pa),
				EstSelectivity: 0.013,
			},
		},
		{
			name: "synth64-join",
			load: func(t *testing.T, e *Engine) {
				const nR = 100
				const nS = 20000
				loadGenerated(t, e, "synth_r", synth.Schema("r"), page.PAX, nR, synth.NewRGen(nR, 1).Next)
				loadGenerated(t, e, "synth_s", synth.Schema("s"), page.PAX, nS, synth.NewSGen(nS, nR, 2).Next)
			},
			spec: QuerySpec{
				Table:          "synth_s",
				Join:           &JoinClause{BuildTable: "synth_r", BuildKey: "r_col_1", ProbeKey: "s_col_2"},
				Filter:         synth.SelectionPredicate(10),
				Output:         synth.JoinOutput(),
				EstSelectivity: 0.10,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := newEngine(t)
			tc.load(t, e)

			host, err := e.Run(tc.spec, ForceHost)
			if err != nil {
				t.Fatal(err)
			}
			dev, err := e.Run(tc.spec, ForceDevice)
			if err != nil {
				t.Fatal(err)
			}

			// Same answer either way.
			if len(host.Rows) != len(dev.Rows) {
				t.Fatalf("host %d rows, device %d rows", len(host.Rows), len(dev.Rows))
			}
			for i := range host.Rows {
				for c := range host.Rows[i] {
					if host.Rows[i][c].Int != dev.Rows[i][c].Int {
						t.Fatalf("row %d col %d: host %v device %v", i, c, host.Rows[i][c], dev.Rows[i][c])
					}
				}
			}

			checkReportInvariants(t, "host", host)
			checkReportInvariants(t, "device", dev)

			// The host path never touches the device CPU; the device path
			// must have used it.
			if cpu, ok := host.Resources.Resource("device-cpu"); !ok || cpu.Ops != 0 {
				t.Errorf("host path charged the device CPU: %+v", cpu)
			}
			if cpu, ok := dev.Resources.Resource("device-cpu"); !ok || cpu.Busy <= 0 {
				t.Errorf("device path shows no device CPU work: %+v", cpu)
			}

			// Pushdown exists to shrink host-link traffic: the device path
			// ships results, the host path ships the scanned pages.
			hb, db := linkBytes(t, "host", host), linkBytes(t, "device", dev)
			if db >= hb {
				t.Errorf("device path moved %d link bytes, host path %d; pushdown should shrink link traffic", db, hb)
			}

			// The device path went through the session protocol.
			if len(dev.Resources.Phases) == 0 {
				t.Error("device path has no OPEN/GET/CLOSE phase stats")
			}
			for _, ph := range dev.Resources.Phases {
				if ph.Count <= 0 {
					t.Errorf("phase %s has count %d", ph.Name, ph.Count)
				}
			}
			if len(host.Resources.Phases) != 0 {
				t.Errorf("host path unexpectedly has phase stats: %+v", host.Resources.Phases)
			}
		})
	}
}
