package core

import (
	"bytes"
	"strings"
	"testing"

	"smartssd/internal/expr"
	"smartssd/internal/page"
	"smartssd/internal/plan"
	"smartssd/internal/schema"
)

// End-to-end §4.3 lifecycle: update dirties the pool, pushdown is
// vetoed and the host sees the new values, flushing restores coherence
// and the device then sees the same new values.
func TestUpdateCoherenceLifecycle(t *testing.T) {
	e, err := New(Config{SSD: smallSSD(), PoolPages: 8192})
	if err != nil {
		t.Fatal(err)
	}
	loadFact(t, e, page.PAX, 20000, OnSSD)
	e.SetCold(false) // keep the pool across operations
	s := widePaddedSchema()

	sumSpec := QuerySpec{
		Table: "fact",
		Aggs: []plan.AggSpec{
			{Kind: plan.Sum, E: expr.ColRef(s, "val"), Name: "sum_val"},
			{Kind: plan.Count, Name: "cnt"},
		},
		EstSelectivity: 1,
	}
	before, err := e.Run(sumSpec, ForceDevice)
	if err != nil {
		t.Fatal(err)
	}

	// UPDATE fact SET val = val + 1000 WHERE val < 10  (2000 rows).
	n, err := e.Update("fact",
		expr.Cmp{Op: expr.LT, L: expr.ColRef(s, "val"), R: expr.IntConst(10)},
		[]SetClause{{Column: "val", E: expr.Arith{Op: expr.Add, L: expr.ColRef(s, "val"), R: expr.IntConst(1000)}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Fatalf("updated %d rows, want 2000", n)
	}
	wantSum := before.Rows[0][0].Int + 2000*1000

	// Auto must refuse pushdown (stale device pages) and the host must
	// already see the update through the pool.
	res, err := e.Run(sumSpec, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement != RanHost {
		t.Fatalf("auto ran on %v over dirty pages (%s)", res.Placement, res.Decision.Reason)
	}
	if !strings.Contains(res.Decision.Reason, "dirty") {
		t.Fatalf("reason = %q, want dirty veto", res.Decision.Reason)
	}
	if got := res.Rows[0][0].Int; got != wantSum {
		t.Fatalf("host sum after update = %d, want %d", got, wantSum)
	}

	// A forced device run right now would read stale data — prove it.
	stale, err := e.Run(sumSpec, ForceDevice)
	if err != nil {
		t.Fatal(err)
	}
	if stale.Rows[0][0].Int != before.Rows[0][0].Int {
		t.Fatalf("device saw %d before flush, want stale %d", stale.Rows[0][0].Int, before.Rows[0][0].Int)
	}

	// Flush restores coherence; device now agrees.
	if err := e.FlushPool(); err != nil {
		t.Fatal(err)
	}
	after, err := e.Run(sumSpec, ForceDevice)
	if err != nil {
		t.Fatal(err)
	}
	if after.Rows[0][0].Int != wantSum {
		t.Fatalf("device sum after flush = %d, want %d", after.Rows[0][0].Int, wantSum)
	}
	// And the planner may push down again.
	auto, err := e.Run(sumSpec, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(auto.Decision.Reason, "dirty") {
		t.Fatalf("dirty veto survived flush: %s", auto.Decision.Reason)
	}
}

func TestUpdateSetSemanticsUsePreUpdateValues(t *testing.T) {
	e := newEngine(t)
	loadFact(t, e, page.NSM, 1000, OnSSD)
	e.SetCold(false)
	s := widePaddedSchema()
	// SET grp = val, val = grp — a swap, which only works if both RHS
	// expressions see pre-update values.
	n, err := e.Update("fact", nil, []SetClause{
		{Column: "grp", E: expr.ColRef(s, "val")},
		{Column: "val", E: expr.ColRef(s, "grp")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("updated %d rows", n)
	}
	res, err := e.Run(QuerySpec{
		Table: "fact",
		Output: []plan.OutputCol{
			{Name: "id", E: expr.ColRef(s, "id")},
			{Name: "grp", E: expr.ColRef(s, "grp")},
			{Name: "val", E: expr.ColRef(s, "val")},
		},
		EstSelectivity: 1,
	}, ForceHost)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		i := r[0].Int
		if r[1].Int != i%100 || r[2].Int != i%40 {
			t.Fatalf("row %d not swapped: grp=%d val=%d", i, r[1].Int, r[2].Int)
		}
	}
}

func TestUpdateValidation(t *testing.T) {
	e := newEngine(t)
	loadFact(t, e, page.NSM, 100, OnSSD)
	if _, err := e.Update("nope", nil, []SetClause{{Column: "val", E: expr.IntConst(1)}}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := e.Update("fact", nil, nil); err == nil {
		t.Error("empty SET accepted")
	}
	if _, err := e.Update("fact", nil, []SetClause{{Column: "ghost", E: expr.IntConst(1)}}); err == nil {
		t.Error("unknown column accepted")
	}
	loadHDD := func() {
		if _, err := e.CreateTable("hfact", widePaddedSchema(), page.NSM, 64, OnHDD); err != nil {
			t.Fatal(err)
		}
		i := 0
		e.Load("hfact", func() (schema.Tuple, bool) {
			if i >= 10 {
				return nil, false
			}
			tup := schema.Tuple{
				schema.IntVal(int64(i)), schema.IntVal(0), schema.IntVal(0), schema.StrVal("x"),
			}
			i++
			return tup, true
		})
	}
	loadHDD()
	// HDD-resident tables take the same update path (no pool-coherence
	// veto; pages are force-written at commit) and must see the new
	// values immediately on the host read path.
	n, err := e.Update("hfact", nil, []SetClause{{Column: "val", E: expr.IntConst(7)}})
	if err != nil {
		t.Fatalf("HDD table update: %v", err)
	}
	if n != 10 {
		t.Fatalf("HDD table update touched %d rows, want 10", n)
	}
	s := widePaddedSchema()
	res, err := e.Run(QuerySpec{
		Table:          "hfact",
		Filter:         expr.Cmp{Op: expr.EQ, L: expr.ColRef(s, "val"), R: expr.IntConst(7)},
		Aggs:           []plan.AggSpec{{Kind: plan.Count, Name: "cnt"}},
		EstSelectivity: 1,
	}, ForceHost)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int; got != 10 {
		t.Fatalf("post-update HDD count = %d, want 10", got)
	}
}

func TestUpdateCharColumn(t *testing.T) {
	e := newEngine(t)
	loadFact(t, e, page.PAX, 500, OnSSD)
	e.SetCold(false)
	s := widePaddedSchema()
	n, err := e.Update("fact",
		expr.Cmp{Op: expr.LT, L: expr.ColRef(s, "id"), R: expr.IntConst(5)},
		[]SetClause{{Column: "pad", E: expr.StrConst("UPDATED")}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("updated %d rows, want 5", n)
	}
	res, err := e.Run(QuerySpec{
		Table:          "fact",
		Filter:         expr.LikePrefix{E: expr.ColRef(s, "pad"), Prefix: "UPDATED"},
		Aggs:           []plan.AggSpec{{Kind: plan.Count, Name: "c"}},
		EstSelectivity: 0.01,
	}, ForceHost)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 5 {
		t.Fatalf("found %d UPDATED rows, want 5", res.Rows[0][0].Int)
	}
}

func TestSaveLoadImageRoundTrip(t *testing.T) {
	e := newEngine(t)
	loadFact(t, e, page.PAX, 20000, OnSSD)
	loadDim(t, e, 40)
	s := widePaddedSchema()
	spec := QuerySpec{
		Table: "fact",
		Join:  &JoinClause{BuildTable: "dim", BuildKey: "d_key", ProbeKey: "grp"},
		Aggs: []plan.AggSpec{
			{Kind: plan.Sum, E: expr.ColRef(s, "val"), Name: "sv"},
			{Kind: plan.Count, Name: "c"},
		},
		EstSelectivity: 1,
	}
	want, err := e.Run(spec, ForceDevice)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := LoadImage(Config{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Catalog restored.
	tbl, err := e2.Table("fact")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.File.TupleCount() != 20000 {
		t.Fatalf("restored TupleCount = %d", tbl.File.TupleCount())
	}
	// Same answers on both paths of the restored engine.
	for _, mode := range []Mode{ForceHost, ForceDevice} {
		got, err := e2.Run(spec, mode)
		if err != nil {
			t.Fatalf("%v on restored engine: %v", mode, err)
		}
		if got.Rows[0][0].Int != want.Rows[0][0].Int || got.Rows[0][1].Int != want.Rows[0][1].Int {
			t.Fatalf("%v restored answer %v != original %v", mode, got.Rows[0], want.Rows[0])
		}
	}
	// New tables can still be created (allocator frontier restored).
	f2, err := e2.CreateTable("extra", dimSchema(), page.NSM, 8, OnSSD)
	if err != nil {
		t.Fatal(err)
	}
	for _, existing := range []string{"fact", "dim"} {
		old, _ := e2.Table(existing)
		if f2.File.StartLBA() < old.File.StartLBA()+old.File.MaxPages() {
			t.Fatalf("new extent overlaps %s", existing)
		}
	}
}

func TestLoadImageRejectsGarbage(t *testing.T) {
	if _, err := LoadImage(Config{}, bytes.NewReader([]byte("not an image at all........"))); err == nil {
		t.Fatal("garbage accepted as image")
	}
	if _, err := LoadImage(Config{}, bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted as image")
	}
}
