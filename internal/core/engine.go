// Package core is the paper's primary contribution assembled: a
// database engine that stores heap tables on simulated storage devices
// and, per query, either processes them the usual way on the host or
// pushes scan, selection, aggregation, and simple hash-join work into
// the Smart SSD through the OPEN/GET/CLOSE session protocol — with a
// cost-based planner making the choice, the buffer-pool coherence
// checks of §4.3, and full elapsed-time and energy accounting for every
// run.
package core

import (
	"errors"
	"fmt"
	"time"

	"smartssd/internal/bufpool"
	"smartssd/internal/device"
	"smartssd/internal/energy"
	"smartssd/internal/exec"
	"smartssd/internal/fault"
	"smartssd/internal/hdd"
	"smartssd/internal/heap"
	"smartssd/internal/opt"
	"smartssd/internal/page"
	"smartssd/internal/schema"
	"smartssd/internal/sim"
	"smartssd/internal/ssd"
	"smartssd/internal/trace"
	"smartssd/internal/txn"
	"smartssd/internal/wal"
)

// Target selects the device a table lives on.
type Target uint8

// Table placement targets.
const (
	// OnSSD places the table on the (Smart) SSD.
	OnSSD Target = iota
	// OnHDD places the table on the baseline disk.
	OnHDD
)

// Config assembles an engine. Zero fields take defaults matching the
// paper's testbed.
type Config struct {
	// SSD configures the Smart SSD; zero value is the paper's device.
	SSD ssd.Params
	// HDD configures the baseline disk; zero value is the paper's
	// drive. Set DisableHDD to skip building it.
	HDD        hdd.Params
	DisableHDD bool
	// HostCores and HostHz describe the host CPU (default 8 x 2 GHz).
	HostCores int
	HostHz    sim.Rate
	// PoolPages is the buffer pool capacity (default 8192 pages, 64 MB;
	// the paper dedicates 24 GB to the DBMS, but cold runs clear it).
	PoolPages int
	// DeviceCost is the embedded-CPU cost model.
	DeviceCost device.CostModel
	// Energy is the power profile for Table 3 accounting.
	Energy energy.Profile

	// MaxDeviceRetries is how many times a device-faulted pushdown is
	// retried on the device before the engine falls back to the host.
	// Default 2; negative means no retries (straight to fallback).
	MaxDeviceRetries int
	// RetryBackoff is the virtual-time wait before the first device
	// retry; it doubles per attempt. Default 5ms.
	RetryBackoff time.Duration
	// DisableFallback surfaces device faults to the caller instead of
	// transparently re-running the query on the host path.
	DisableFallback bool
}

func (c *Config) fill() {
	if c.HostCores == 0 {
		c.HostCores = 8
	}
	if c.HostHz == 0 {
		c.HostHz = sim.GHz(2)
	}
	if c.PoolPages == 0 {
		c.PoolPages = 8192
	}
	if c.DeviceCost == (device.CostModel{}) {
		c.DeviceCost = device.DefaultCostModel()
	}
	if c.Energy == (energy.Profile{}) {
		c.Energy = energy.DefaultProfile()
	}
	if c.MaxDeviceRetries == 0 {
		c.MaxDeviceRetries = 2
	}
	if c.MaxDeviceRetries < 0 {
		c.MaxDeviceRetries = 0
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
}

// Table is a catalogued heap table.
type Table struct {
	File   *heap.File
	Target Target
}

// Engine is the integrated system: devices, host executor, buffer pool,
// Smart SSD runtime, planner, and catalog.
type Engine struct {
	cfg     Config
	ssd     *ssd.Device
	hdd     *hdd.Device
	host    *exec.Host
	pool    *bufpool.Pool
	runtime *device.Runtime
	planner *opt.Planner

	ssdAlloc heap.Allocator
	hddAlloc heap.Allocator
	tables   map[string]*Table
	// stats holds per-table column ranges observed during Load (see
	// stats.go); the SQL planner's selectivity estimator reads them.
	stats map[string][]ColumnStats

	// Durability layer, activated lazily by the first Begin/Update
	// (see durability.go). Nil on read-only engines.
	walLog       *wal.Log
	txns         *txn.Manager
	lastRecovery *RecoveryReport
	// dataWrites counts guarded data-page flushes (see DurableWrites).
	dataWrites uint64

	// cold controls whether Run starts from a cleared buffer pool and
	// zeroed timing (the paper's cold-experiment methodology).
	cold bool
	// hybridAuto lets Auto mode choose the hybrid split when the
	// planner estimates it beats both pure paths.
	hybridAuto bool

	// scalarExec and batchRows are the executor tuning knobs (see
	// SetExecTuning); the zero values select the vectorized default.
	scalarExec bool
	batchRows  int

	// scratch holds reusable executor arenas, reset between runs so a
	// reused engine stops allocating on join-build and aggregate paths.
	scratch exec.Scratch
	// baseline is the post-load reference state ResetForRun rewinds to:
	// the fault streams' positions and the durable-write count as they
	// stood when the data last changed.
	baseline runBaseline
}

// runBaseline captures the engine state that a fresh Clone would start
// from, beyond what ResetTiming already clears.
type runBaseline struct {
	faults     *fault.Snapshot
	dataWrites uint64
}

// markRunBaseline records the current fault-stream positions and
// durable-write count as the state ResetForRun restores. Called after
// construction, after every bulk load, and on freshly built clones.
func (e *Engine) markRunBaseline() {
	e.baseline = runBaseline{
		faults:     e.ssd.Injector().Snapshot(),
		dataWrites: e.dataWrites,
	}
}

// ErrResetDurable is reported by ResetForRun on an engine whose durable
// write path has been activated: committed updates have changed table
// data, so rewinding the fault streams would desynchronize them from
// the pages they already mutated.
var ErrResetDurable = errors.New("core: ResetForRun on engine with durable updates")

// ResetForRun rewinds a previously used engine to the state a fresh
// Clone of its loaded data would start from, without reallocating
// devices, servers, pool frames, or executor arenas: the buffer pool
// is emptied, all timing is zeroed, the fault-injector streams are
// restored to their post-load positions, and the executor scratch
// arenas are recycled. A ResetForRun-then-Run is byte-identical to a
// fresh-Clone-then-Run (see TestResetForRunEquivalence); the sweep
// harness uses it to reuse one clone per worker across sweep points.
func (e *Engine) ResetForRun() error {
	if e.walLog != nil {
		return ErrResetDurable
	}
	e.pool.Clear()
	e.ResetTiming()
	e.ssd.Injector().Restore(e.baseline.faults)
	e.dataWrites = e.baseline.dataWrites
	e.scratch.Reset()
	return nil
}

// New builds an engine. A zero Config reproduces the paper's testbed:
// the Samsung-class Smart SSD, the 10K RPM SAS HDD baseline, and a
// 2 GHz 8-core host with a 235 W idle floor.
func New(cfg Config) (*Engine, error) {
	cfg.fill()
	sdev, err := ssd.New(cfg.SSD)
	if err != nil {
		return nil, fmt.Errorf("core: ssd: %w", err)
	}
	var hdev *hdd.Device
	if !cfg.DisableHDD {
		hdev, err = hdd.New(cfg.HDD)
		if err != nil {
			return nil, fmt.Errorf("core: hdd: %w", err)
		}
	}
	e := &Engine{
		cfg:     cfg,
		ssd:     sdev,
		hdd:     hdev,
		host:    exec.NewHost(cfg.HostHz, cfg.HostCores),
		runtime: device.NewRuntime(sdev, cfg.DeviceCost),
		planner: opt.NewPlanner(cfg.DeviceCost),
		tables:  make(map[string]*Table),
		stats:   make(map[string][]ColumnStats),
		cold:    true,
	}
	e.pool = bufpool.New(cfg.PoolPages, func(lba int64, data []byte) error {
		// Data-page flushes are guarded durable writes: a power-cut
		// fault refuses the write entirely (pages are page-atomic;
		// they never partially reach media).
		e.dataWrites++
		if err := wal.GuardDataWrite(sdev.Injector()); err != nil {
			return err
		}
		_, err := sdev.WritePage(lba, data, 0)
		return err
	})
	e.markRunBaseline()
	return e, nil
}

// SSD reports the engine's Smart SSD.
func (e *Engine) SSD() *ssd.Device { return e.ssd }

// HDD reports the engine's baseline disk (nil when disabled).
func (e *Engine) HDD() *hdd.Device { return e.hdd }

// Host reports the host CPU model.
func (e *Engine) Host() *exec.Host { return e.host }

// Pool reports the buffer pool.
func (e *Engine) Pool() *bufpool.Pool { return e.pool }

// Runtime reports the Smart SSD runtime (for protocol-level access).
func (e *Engine) Runtime() *device.Runtime { return e.runtime }

// Planner reports the pushdown planner.
func (e *Engine) Planner() *opt.Planner { return e.planner }

// SetHybridAuto extends Auto mode to a three-way choice: host, device,
// or the hybrid split, whichever the planner estimates fastest. Off by
// default (the paper's prototype is binary).
func (e *Engine) SetHybridAuto(enabled bool) { e.hybridAuto = enabled }

// SetCold controls run methodology: cold runs (default) clear the
// buffer pool and reset all timing before executing, matching the
// paper's "no data cached in the buffer pool prior to running each
// query". Warm runs keep pool contents and accumulate on the timeline.
func (e *Engine) SetCold(cold bool) { e.cold = cold }

// SetExecTuning selects the executor implementation on both the host
// and device paths: scalar true forces tuple-at-a-time execution,
// false (the default) lets supported plans run vectorized over columnar
// batches; batchRows caps the host path's selection chunk length (zero
// means whole-page batches). Every setting produces byte-identical
// results, timings, and resource accounting — the vectorized paths
// charge closed-form identical CPU cycles — so these are wall-clock
// knobs for benchmarks, sweeps, and equivalence tests.
func (e *Engine) SetExecTuning(scalar bool, batchRows int) {
	e.scalarExec = scalar
	e.batchRows = batchRows
	e.runtime.SetExecTuning(scalar)
}

// ErrNoTable is reported for queries over unknown tables.
var ErrNoTable = errors.New("core: unknown table")

// CreateTable catalogs a new heap table of maxPages pages on target.
func (e *Engine) CreateTable(name string, s *schema.Schema, l page.Layout, maxPages int64, target Target) (*Table, error) {
	if _, dup := e.tables[name]; dup {
		return nil, fmt.Errorf("core: table %q already exists", name)
	}
	var f *heap.File
	var err error
	switch target {
	case OnSSD:
		if e.walLog != nil && e.ssdAlloc.Used()+maxPages > e.walLog.Start() {
			return nil, fmt.Errorf("core: table %q (%d pages) would overlap the WAL region at page %d",
				name, maxPages, e.walLog.Start())
		}
		f, err = heap.Create(name, e.ssd, &e.ssdAlloc, s, l, maxPages)
	case OnHDD:
		if e.hdd == nil {
			return nil, errors.New("core: HDD disabled in this engine")
		}
		f, err = heap.Create(name, e.hdd, &e.hddAlloc, s, l, maxPages)
	default:
		return nil, fmt.Errorf("core: unknown target %d", target)
	}
	if err != nil {
		return nil, err
	}
	t := &Table{File: f, Target: target}
	e.tables[name] = t
	return t, nil
}

// Table looks up a catalogued table.
func (e *Engine) Table(name string) (*Table, error) {
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// Load bulk-loads tuples from next into a table, then resets device
// timing so the load does not pollute the first measured run.
func (e *Engine) Load(name string, next func() (schema.Tuple, bool)) error {
	t, err := e.Table(name)
	if err != nil {
		return err
	}
	app := t.File.NewAppender()
	acc := newStatsAccumulator(t.File.Schema(), e.stats[name])
	for {
		tup, ok := next()
		if !ok {
			break
		}
		acc.observe(tup)
		if err := app.Append(tup); err != nil {
			return fmt.Errorf("core: load %q: %w", name, err)
		}
	}
	e.stats[name] = acc.cols
	if err := app.Close(); err != nil {
		return err
	}
	e.ResetTiming()
	e.markRunBaseline()
	return nil
}

// SetTracer installs a per-request trace hook on every simulated
// resource — the SSD's channels, DMA bus, link, and embedded CPU, the
// HDD's media server, plus the host CPU — so a run's full timeline can
// be exported. Pass nil to remove it.
func (e *Engine) SetTracer(fn sim.TraceFunc) {
	e.ssd.SetTracer(fn)
	if e.hdd != nil {
		e.hdd.SetTracer(fn)
	}
	e.host.CPU.SetTracer(fn)
}

// SetRecorder attaches an event recorder to the whole engine: every
// served request on every simulated resource plus the runtime's
// OPEN/GET/CLOSE protocol spans. Pass nil to remove all hooks; with no
// recorder the timing paths are allocation-free and runs are
// byte-identical to an uninstrumented engine.
func (e *Engine) SetRecorder(rec *trace.Recorder) {
	e.ssd.SetRecorder(rec)
	e.runtime.SetRecorder(rec)
	if rec == nil {
		if e.hdd != nil {
			e.hdd.SetTracer(nil)
		}
		e.host.CPU.SetTracer(nil)
		return
	}
	hook := rec.Hook()
	if e.hdd != nil {
		e.hdd.SetTracer(hook)
	}
	e.host.CPU.SetTracer(hook)
}

// ResetTiming zeroes all device and host timing state (data preserved).
func (e *Engine) ResetTiming() {
	e.ssd.ResetTiming()
	if e.hdd != nil {
		e.hdd.ResetTiming()
	}
	e.host.Reset()
	e.runtime.ResetPhases()
}
