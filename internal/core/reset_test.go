package core

import (
	"errors"
	"testing"

	"smartssd/internal/expr"
	"smartssd/internal/fault"
	"smartssd/internal/page"
)

// TestResetForRunEquivalence is the contract the sweep harness's
// engine-reuse mode stands on: after any sequence of runs,
// ResetForRun-then-Run is byte-identical — timing, energy, resource
// utilization, counters, rows — to fresh-Clone-then-Run. Nothing may
// leak across the reset: CPU/device timing, buffer-pool contents,
// executor scratch arenas, or host stat counters.
func TestResetForRunEquivalence(t *testing.T) {
	e := newEngine(t)
	loadFact(t, e, page.PAX, 20000, OnSSD)
	loadDim(t, e, 40)

	specs := []struct {
		name string
		spec QuerySpec
		mode Mode
	}{
		{"selection-host", selectiveSpec(), ForceHost},
		{"selection-device", selectiveSpec(), ForceDevice},
		{"join-agg-host", joinAggSpec(), ForceHost},
		{"join-agg-device", joinAggSpec(), ForceDevice},
		{"auto", selectiveSpec(), Auto},
	}

	// Reference results from fresh clones, one per spec.
	want := make([]string, len(specs))
	for i, s := range specs {
		c, err := e.Clone()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resultFingerprint(mustRun(t, c, s.spec, s.mode))
	}

	// One reused engine cycles through every spec several times in a
	// scrambled order; each ResetForRun must erase all trace of the
	// previous run, whatever it was.
	reused, err := e.Clone()
	if err != nil {
		t.Fatal(err)
	}
	order := []int{0, 3, 1, 4, 2, 2, 0, 4, 3, 1}
	for _, i := range order {
		if err := reused.ResetForRun(); err != nil {
			t.Fatalf("ResetForRun: %v", err)
		}
		s := specs[i]
		got := resultFingerprint(mustRun(t, reused, s.spec, s.mode))
		if got != want[i] {
			t.Fatalf("%s on reused engine diverged from fresh clone:\n--- fresh ---\n%s--- reused ---\n%s",
				s.name, want[i], got)
		}
	}
}

// TestResetForRunRestoresFaultStreams pins that ResetForRun rewinds
// the fault injector to its post-load position: a reused engine must
// replay the exact fault schedule — retries, fallbacks, sticky pages —
// that a fresh clone would draw, run after run.
func TestResetForRunRestoresFaultStreams(t *testing.T) {
	e := newFaultyEngine(t, fault.Config{
		Seed:             7,
		ReadErrorRate:    0.01,
		LatencySpikeRate: 0.005,
		SessionAbortRate: 0.3,
	})
	loadFact(t, e, page.PAX, 20000, OnSSD)
	loadDim(t, e, 40)

	spec := joinAggSpec()
	ref, err := e.Clone()
	if err != nil {
		t.Fatal(err)
	}
	want := resultFingerprint(mustRun(t, ref, spec, ForceDevice))

	reused, err := e.Clone()
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if err := reused.ResetForRun(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got := resultFingerprint(mustRun(t, reused, spec, ForceDevice)); got != want {
			t.Fatalf("round %d: reused faulty engine diverged:\n--- fresh ---\n%s--- reused ---\n%s",
				round, want, got)
		}
	}
}

// TestResetForRunRefusesDurableEngines pins that an engine whose WAL
// has been activated cannot be rewound: committed updates changed the
// stored pages, so replaying fault streams against them would lie.
func TestResetForRunRefusesDurableEngines(t *testing.T) {
	e := newEngine(t)
	loadFact(t, e, page.PAX, 2000, OnSSD)

	fact := widePaddedSchema()
	if _, err := e.Update("fact",
		expr.Cmp{Op: expr.LT, L: expr.ColRef(fact, "val"), R: expr.IntConst(1)},
		[]SetClause{{Column: "val", E: expr.IntConst(0)}},
	); err != nil {
		t.Fatal(err)
	}
	if err := e.ResetForRun(); !errors.Is(err, ErrResetDurable) {
		t.Fatalf("ResetForRun on durable engine: got %v, want ErrResetDurable", err)
	}
}
