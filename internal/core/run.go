package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"smartssd/internal/device"
	"smartssd/internal/energy"
	"smartssd/internal/exec"
	"smartssd/internal/expr"
	"smartssd/internal/metrics"
	"smartssd/internal/opt"
	"smartssd/internal/plan"
	"smartssd/internal/schema"
)

// Mode selects where a query executes.
type Mode uint8

// Execution modes.
const (
	// Auto lets the cost-based planner choose (the §5 "extend the query
	// optimizer" direction).
	Auto Mode = iota
	// ForceHost always runs the usual host path.
	ForceHost
	// ForceDevice always pushes down (fails if infeasible).
	ForceDevice
	// ForceHybrid splits the scan between host and device, running both
	// concurrently and merging on the host (§4.3 partial pushdown).
	ForceHybrid
)

func (m Mode) String() string {
	switch m {
	case Auto:
		return "auto"
	case ForceHost:
		return "host"
	case ForceHybrid:
		return "hybrid"
	default:
		return "device"
	}
}

// JoinClause names a simple hash join: build BuildTable in memory on
// BuildKey and probe it with the main table's ProbeKey.
type JoinClause struct {
	BuildTable string
	BuildKey   string // column name in the build table
	ProbeKey   string // column name in the main (probe) table
}

// QuerySpec is a query in the paper's supported class. Filter, Output,
// and Agg expressions are evaluated over the combined row: the main
// table's columns first, then (for joins) the build table's columns.
type QuerySpec struct {
	Table  string
	Join   *JoinClause
	Filter expr.Expr
	Output []plan.OutputCol
	Aggs   []plan.AggSpec
	// GroupBy lists combined-row column indexes to group the
	// aggregates by; group counts must stay small enough for device
	// DRAM when pushed down (TPC-H Q1 scale).
	GroupBy []int
	// OrderBy sorts the final result by output-schema columns. Ordering
	// always runs on the host — a hybrid plan when the rest of the
	// query is pushed down (the device has no sort operator; the host
	// finishes the work, charged to its CPU on the same timeline).
	OrderBy []plan.OrderKey
	// Limit truncates the result after ordering; zero means no limit.
	Limit int
	// EstSelectivity is the planner's estimate of the fraction of
	// scanned tuples reaching the output (default 0.1).
	EstSelectivity float64
}

// Placement describes where a run actually executed.
type Placement uint8

// Run placements.
const (
	RanHost Placement = iota
	RanDevice
	RanHybrid
)

func (p Placement) String() string {
	switch p {
	case RanDevice:
		return "device"
	case RanHybrid:
		return "hybrid"
	default:
		return "host"
	}
}

// Result is one run's answer plus its complete measurement.
type Result struct {
	// Tag carries the caller's label for this run (e.g. the serving
	// session that issued it); the engine never sets it.
	Tag     string
	Rows    []schema.Tuple
	Schema  *schema.Schema
	Elapsed time.Duration
	Energy  energy.Breakdown
	// Placement reports where the query ran; Decision carries the
	// planner's evidence (zero-valued for forced modes).
	Placement Placement
	Decision  opt.Decision
	// Bottleneck names the pipeline stage that set throughput.
	Bottleneck string
	// Stages breaks the run down per pipeline resource (busy time and
	// utilization over the elapsed window), for profiling output.
	Stages []StageUtil
	// Resources is the full per-resource report: utilization, queueing,
	// time-to-bottleneck, traffic volumes, and (for device runs) the
	// OPEN/GET/CLOSE phase latencies. It is built from the servers'
	// always-on counters, so it is populated whether or not tracing is
	// enabled.
	Resources metrics.Report
	// HybridDeviceFraction is the page fraction the device processed
	// (hybrid runs only).
	HybridDeviceFraction float64
	// Device traffic.
	FlashBytesRead int64
	LinkBytesOut   int64
	// HostStats counts host-executor work (host runs only).
	HostStats exec.Stats
	// Faults is the availability story of the run: retries, fallbacks,
	// and every reliability event that fired (all zero when fault
	// injection is off).
	Faults FaultReport
}

// StageUtil is one pipeline resource's share of a run.
type StageUtil struct {
	Name string
	// Busy is the resource's cumulative service time (per lane for
	// parallel resources).
	Busy time.Duration
	// Utilization is Busy over the run's elapsed time, in [0,1].
	Utilization float64
}

// Run executes spec under mode. Cold engines (the default) clear the
// buffer pool and zero the timeline first. ORDER BY and LIMIT are
// applied on the host after either execution path.
func (e *Engine) Run(spec QuerySpec, mode Mode) (*Result, error) {
	res, err := e.runPlaced(spec, mode)
	if err != nil {
		return nil, err
	}
	if err := e.finishOrdering(res, spec); err != nil {
		return nil, err
	}
	return res, nil
}

func (e *Engine) runPlaced(spec QuerySpec, mode Mode) (*Result, error) {
	t, err := e.Table(spec.Table)
	if err != nil {
		return nil, err
	}
	var build *Table
	if spec.Join != nil {
		if build, err = e.Table(spec.Join.BuildTable); err != nil {
			return nil, err
		}
		if build.Target != t.Target {
			return nil, errors.New("core: join across devices is not supported")
		}
	}

	if e.cold {
		e.pool.Clear()
		e.ResetTiming()
	}
	// Scratch contents never outlive a run, so every run starts from a
	// recycled (not regrown) arena regardless of cold/warm methodology.
	e.scratch.Reset()

	// HDD-resident tables have no pushdown path.
	if t.Target == OnHDD {
		if mode == ForceDevice || mode == ForceHybrid {
			return nil, errors.New("core: table on HDD cannot run in the device")
		}
		return e.runHost(spec, t, build)
	}

	dq, err := e.deviceQuery(spec, t, build)
	if err != nil {
		return nil, err
	}
	switch mode {
	case ForceHost:
		return e.runHost(spec, t, build)
	case ForceHybrid:
		return e.runHybrid(spec, t, build)
	case ForceDevice:
		return e.runDevice(spec, t, build, dq, opt.Decision{Pushdown: true, Reason: "forced"})
	default:
		d := e.planner.Decide(dq, e.ssd, e.pool, spec.EstSelectivity)
		// With hybrid planning enabled, a costed (non-vetoed) decision
		// may route to the split when it beats both pure paths.
		if e.hybridAuto && d.HostCost > 0 && d.HybridCost > 0 &&
			d.HybridCost < d.HostCost && d.HybridCost < d.DeviceCost {
			res, err := e.runHybrid(spec, t, build)
			if err == nil {
				res.Decision.HostCost = d.HostCost
				res.Decision.DeviceCost = d.DeviceCost
				res.Decision.HybridCost = d.HybridCost
			}
			return res, err
		}
		if d.Pushdown {
			return e.runDevice(spec, t, build, dq, d)
		}
		res, err := e.runHost(spec, t, build)
		if err == nil {
			res.Decision = d
		}
		return res, err
	}
}

// deviceQuery lowers a QuerySpec to the in-device program form.
func (e *Engine) deviceQuery(spec QuerySpec, t, build *Table) (device.Query, error) {
	q := device.Query{
		Table:   device.RefOf(t.File),
		Filter:  spec.Filter,
		Output:  spec.Output,
		Aggs:    spec.Aggs,
		GroupBy: spec.GroupBy,
	}
	if spec.Join != nil {
		bk := build.File.Schema().ColumnIndex(spec.Join.BuildKey)
		pk := t.File.Schema().ColumnIndex(spec.Join.ProbeKey)
		if bk < 0 || pk < 0 {
			return device.Query{}, fmt.Errorf("core: join keys %q/%q not found",
				spec.Join.BuildKey, spec.Join.ProbeKey)
		}
		q.Join = &device.JoinSpec{Build: device.RefOf(build.File), BuildKey: bk, ProbeKey: pk}
	}
	return q, nil
}

// hostPlan lowers a QuerySpec to a host operator tree. The combined-row
// column convention matches the device program: when the filter only
// references main-table columns it is inlined into the scan, exactly
// the residual-predicate placement SQL Server uses.
func (e *Engine) hostPlan(spec QuerySpec, t, build *Table) (exec.Operator, error) {
	np := t.File.Schema().NumColumns()
	var root exec.Operator
	scan := &exec.TableScan{File: t.File}
	if t.Target == OnSSD {
		scan.Pool = e.pool
	}
	filterOnProbe := spec.Filter != nil && maxColumn(spec.Filter) < np

	if spec.Join == nil {
		if spec.Filter != nil {
			scan.Filter = spec.Filter
		}
		root = scan
	} else {
		if filterOnProbe {
			scan.Filter = spec.Filter
		}
		buildScan := &exec.TableScan{File: build.File}
		if build.Target == OnSSD {
			buildScan.Pool = e.pool
		}
		root = &exec.HashJoin{
			Build:    buildScan,
			Probe:    scan,
			BuildKey: build.File.Schema().MustColumnIndex(spec.Join.BuildKey),
			ProbeKey: t.File.Schema().MustColumnIndex(spec.Join.ProbeKey),
		}
		if spec.Filter != nil && !filterOnProbe {
			root = &exec.Filter{Input: root, Pred: spec.Filter}
		}
	}

	switch {
	case len(spec.Aggs) > 0:
		root = &exec.Aggregate{Input: root, GroupBy: spec.GroupBy, Aggs: spec.Aggs}
	case len(spec.Output) > 0:
		root = &exec.Project{Input: root, Cols: spec.Output}
	default:
		return nil, errors.New("core: query has neither output columns nor aggregates")
	}
	return root, nil
}

// finishOrdering applies ORDER BY and LIMIT to a completed result,
// charging the sort's comparisons to the host CPU and extending the
// run's elapsed time accordingly.
func (e *Engine) finishOrdering(res *Result, spec QuerySpec) error {
	if len(spec.OrderBy) == 0 && spec.Limit <= 0 {
		return nil
	}
	for _, k := range spec.OrderBy {
		if k.Col < 0 || k.Col >= res.Schema.NumColumns() {
			return fmt.Errorf("core: ORDER BY column %d out of output schema %v", k.Col, res.Schema)
		}
	}
	if len(spec.OrderBy) > 0 {
		sort.SliceStable(res.Rows, func(i, j int) bool {
			for _, k := range spec.OrderBy {
				kind := res.Schema.Column(k.Col).Kind
				c := schema.Compare(kind, res.Rows[i][k.Col], res.Rows[j][k.Col])
				if c == 0 {
					continue
				}
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		// Charge about n log2(n) comparisons, each a few host cycles.
		n := int64(len(res.Rows))
		if n > 1 {
			logn := int64(1)
			for v := n; v > 1; v >>= 1 {
				logn++
			}
			cycles := n * logn * int64(len(spec.OrderBy)) * e.host.Cost.OpCycles
			done := e.host.CPU.Serve(res.Elapsed, cycles)
			if done > res.Elapsed {
				res.Elapsed = done
			}
		}
	}
	if spec.Limit > 0 && len(res.Rows) > spec.Limit {
		res.Rows = res.Rows[:spec.Limit]
	}
	return nil
}

func maxColumn(ex expr.Expr) int {
	m := -1
	for _, c := range ex.Columns(nil) {
		if c > m {
			m = c
		}
	}
	return m
}

// newExecCtx builds a host executor context carrying the engine's
// scratch arenas and execution tuning.
func (e *Engine) newExecCtx() *exec.Ctx {
	ctx := exec.NewCtx(e.host)
	ctx.Scratch = &e.scratch
	ctx.ScalarExec = e.scalarExec
	ctx.BatchRows = e.batchRows
	return ctx
}

func (e *Engine) runHost(spec QuerySpec, t, build *Table) (*Result, error) {
	op, err := e.hostPlan(spec, t, build)
	if err != nil {
		return nil, err
	}
	win := e.faultWindow()
	ctx := e.newExecCtx()
	rows, end, err := exec.Collect(ctx, op)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Rows:      rows,
		Schema:    op.Schema(),
		Elapsed:   end,
		Placement: RanHost,
		HostStats: ctx.Stats,
	}
	e.finishMetrics(res, t)
	res.Elapsed += win.diff(e, &res.Faults)
	return res, nil
}

// runDevice executes the pushed-down program with the degradation
// ladder of the fault model: bounded retry-with-backoff on the device,
// then transparent host fallback (re-scanning through the block
// interface). Non-fault errors surface immediately. On a fault-free
// device this is exactly one RunQuery call.
func (e *Engine) runDevice(spec QuerySpec, t, build *Table, q device.Query, d opt.Decision) (*Result, error) {
	win := e.faultWindow()
	var rep FaultReport
	var wait time.Duration
	backoff := e.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= e.cfg.MaxDeviceRetries; attempt++ {
		rep.DeviceAttempts++
		rows, end, err := e.runtime.RunQuery(q)
		if err == nil {
			res := &Result{
				Rows:      rows,
				Schema:    q.OutputSchema(),
				Elapsed:   end,
				Placement: RanDevice,
				Decision:  d,
			}
			e.finishMetrics(res, &Table{Target: OnSSD})
			res.Resources.Phases = e.runtime.PhaseStats().Phases()
			res.Elapsed += wait + win.diff(e, &rep)
			res.Faults = rep
			return res, nil
		}
		lastErr = err
		if !isDeviceFault(err) {
			return nil, err
		}
		if attempt < e.cfg.MaxDeviceRetries {
			wait += backoff
			rep.BackoffWait += backoff
			backoff *= 2
		}
	}
	if e.cfg.DisableFallback {
		return nil, fmt.Errorf("core: device path failed after %d attempts: %w",
			rep.DeviceAttempts, lastErr)
	}
	rep.HostFallback = true
	rep.FallbackReason = faultReason(lastErr)
	res, err := e.runHost(spec, t, build)
	if err != nil {
		return nil, fmt.Errorf("core: host fallback after %v: %w", lastErr, err)
	}
	res.Decision = d
	res.Elapsed += wait + win.diff(e, &rep)
	res.Faults = rep
	return res, nil
}

// finishMetrics fills bottleneck, traffic, and energy from the device
// activity counters.
func (e *Engine) finishMetrics(res *Result, t *Table) {
	util := func(busy time.Duration) float64 {
		if res.Elapsed <= 0 {
			return 0
		}
		u := float64(busy) / float64(res.Elapsed)
		if u > 1 {
			u = 1
		}
		return u
	}
	hostBusy := e.host.CPU.BusyTime() / time.Duration(e.cfg.HostCores)
	if t.Target == OnHDD {
		act := e.hdd.Activity()
		res.Bottleneck = "hdd-media"
		res.FlashBytesRead = act.BytesRead
		res.LinkBytesOut = act.BytesRead
		res.Stages = []StageUtil{
			{Name: "hdd-media", Busy: act.MediaBusy, Utilization: util(act.MediaBusy)},
			{Name: "host-cpu", Busy: hostBusy, Utilization: util(hostBusy)},
		}
		res.Energy = e.cfg.Energy.Energy(energy.Usage{
			Kind:            energy.HDD,
			Elapsed:         res.Elapsed,
			MediaBusy:       act.MediaBusy,
			HostIngestBytes: act.BytesRead,
		})
		res.Resources = metrics.Snapshot(res.Elapsed,
			append(e.hdd.ResourceGroups(), metrics.GroupOf("host-cpu", "cycles", e.host.CPU))...)
		return
	}
	act := e.ssd.Activity()
	res.Bottleneck = e.ssd.Bottleneck()
	res.FlashBytesRead = act.FlashBytesRead
	res.LinkBytesOut = act.LinkBytesOut
	chAvg := act.ChannelBusy / time.Duration(e.ssd.Params().Geometry.Channels)
	dcpuAvg := act.DeviceCPUBusy / time.Duration(e.ssd.Params().DeviceCPUCores)
	res.Stages = []StageUtil{
		{Name: "flash-channels", Busy: chAvg, Utilization: util(chAvg)},
		{Name: "dma-bus", Busy: act.DMABusy, Utilization: util(act.DMABusy)},
		{Name: "host-link", Busy: act.LinkBusy, Utilization: util(act.LinkBusy)},
		{Name: "device-cpu", Busy: dcpuAvg, Utilization: util(dcpuAvg)},
		{Name: "host-cpu", Busy: hostBusy, Utilization: util(hostBusy)},
	}
	res.Energy = e.cfg.Energy.Energy(energy.Usage{
		Kind:            energy.SSD,
		Elapsed:         res.Elapsed,
		FlashBusy:       act.DMABusy,
		LinkBusy:        act.LinkBusy,
		DeviceCPUBusy:   act.DeviceCPUBusy,
		DeviceCPUCores:  e.ssd.Params().DeviceCPUCores,
		HostIngestBytes: act.LinkBytesOut,
	})
	res.Resources = metrics.Snapshot(res.Elapsed,
		append(e.ssd.ResourceGroups(), metrics.GroupOf("host-cpu", "cycles", e.host.CPU))...)
}

// Decide reports the planner's host-versus-device decision for spec
// without executing anything — the cost evidence the EXPLAIN surface
// renders alongside the plans.
func (e *Engine) Decide(spec QuerySpec) (opt.Decision, error) {
	t, err := e.Table(spec.Table)
	if err != nil {
		return opt.Decision{}, err
	}
	var build *Table
	if spec.Join != nil {
		if build, err = e.Table(spec.Join.BuildTable); err != nil {
			return opt.Decision{}, err
		}
	}
	if t.Target == OnHDD {
		return opt.Decision{Reason: "table on HDD has no pushdown path"}, nil
	}
	dq, err := e.deviceQuery(spec, t, build)
	if err != nil {
		return opt.Decision{}, err
	}
	return e.planner.Decide(dq, e.ssd, e.pool, spec.EstSelectivity), nil
}

// Explain renders both candidate plans and the planner's decision
// without executing anything.
func (e *Engine) Explain(spec QuerySpec) (string, error) {
	t, err := e.Table(spec.Table)
	if err != nil {
		return "", err
	}
	var build *Table
	if spec.Join != nil {
		if build, err = e.Table(spec.Join.BuildTable); err != nil {
			return "", err
		}
	}
	out := ""
	if op, err := e.hostPlan(spec, t, build); err == nil {
		out += "host plan:\n" + exec.ExplainTree(op)
	}
	if t.Target == OnSSD {
		dq, err := e.deviceQuery(spec, t, build)
		if err != nil {
			return "", err
		}
		out += "device plan:\n" + dq.Explain()
		d := e.planner.Decide(dq, e.ssd, e.pool, spec.EstSelectivity)
		out += "decision: " + d.String() + "\n"
	}
	return out, nil
}
