package core

import (
	"errors"
	"fmt"

	"smartssd/internal/device"
	"smartssd/internal/exec"
	"smartssd/internal/opt"
	"smartssd/internal/plan"
	"smartssd/internal/schema"
)

// Hybrid execution realizes §4.3's partial-pushdown remark ("we may
// still want to process ... part of the query inside the Smart SSD"):
// the scanned table is split by pages, the device program processes the
// first fraction while the host processes the rest concurrently, and
// the host merges partial results.
//
// Both paths share the flash channels and DMA bus (the simulator models
// the contention), but each brings its own compute: the embedded CPU on
// one side, the host link + host CPU on the other. For a CPU-saturated
// pushdown like Q6 the combined throughput approaches the sum of the
// two paths — about 2.7x over the host baseline, versus 1.7x for pure
// pushdown — until the shared DMA bus (2.8x) caps it.

// hybridSplit reports the fraction of pages the device should take:
// the equalizing split f = hostCost / (hostCost + deviceCost), so both
// sides finish together under the planner's estimates.
func (e *Engine) hybridSplit(dq device.Query, estSel float64) float64 {
	d := e.planner.Decide(dq, e.ssd, nil, estSel)
	h, dv := float64(d.HostCost), float64(d.DeviceCost)
	if h <= 0 || dv <= 0 {
		return 0.5
	}
	f := h / (h + dv)
	if f < 0.05 {
		f = 0.05
	}
	if f > 0.95 {
		f = 0.95
	}
	return f
}

// runHybrid executes spec split across device and host. Supported for
// SSD-resident tables; joins replicate the build to both sides (the
// build table is small by the query-class assumption).
func (e *Engine) runHybrid(spec QuerySpec, t, build *Table) (*Result, error) {
	if t.Target != OnSSD {
		return nil, errors.New("core: hybrid execution needs an SSD-resident table")
	}
	dq, err := e.deviceQuery(spec, t, build)
	if err != nil {
		return nil, err
	}
	f := e.hybridSplit(dq, spec.EstSelectivity)
	devPages := int64(float64(t.File.Pages()) * f)
	if devPages < 1 {
		devPages = 1
	}
	if devPages >= t.File.Pages() {
		devPages = t.File.Pages() - 1
	}

	// Device side: the leading page range.
	dq.Table.Pages = devPages
	win := e.faultWindow()
	devRows, devEnd, err := e.runtime.RunQuery(dq)
	if err != nil {
		// A device fault on the split's device half degrades the whole
		// query to the pure host path rather than losing its partition.
		if isDeviceFault(err) && !e.cfg.DisableFallback {
			res, herr := e.runHost(spec, t, build)
			if herr != nil {
				return nil, fmt.Errorf("core: host fallback after %v: %w", err, herr)
			}
			res.Faults.DeviceAttempts = 1
			res.Faults.HostFallback = true
			res.Faults.FallbackReason = faultReason(err)
			res.Elapsed += win.diff(e, &res.Faults)
			return res, nil
		}
		return nil, fmt.Errorf("core: hybrid device side: %w", err)
	}

	// Host side: the trailing range, on the same timeline (its flash
	// fetches queue against the device program's on the shared bus).
	hostSpec := spec
	hostOp, err := e.hostPlan(hostSpec, t, build)
	if err != nil {
		return nil, err
	}
	setScanRange(hostOp, t.File.Name(), devPages, t.File.Pages()-devPages)
	ctx := e.newExecCtx()
	hostRows, hostEnd, err := exec.Collect(ctx, hostOp)
	if err != nil {
		return nil, fmt.Errorf("core: hybrid host side: %w", err)
	}

	res := &Result{
		Schema:    dq.OutputSchema(),
		Placement: RanHybrid,
		Decision: opt.Decision{Reason: fmt.Sprintf(
			"hybrid split: device %.0f%% of pages, host %.0f%%", 100*f, 100*(1-f))},
		HostStats:            ctx.Stats,
		HybridDeviceFraction: f,
	}
	res.Elapsed = devEnd
	if hostEnd > res.Elapsed {
		res.Elapsed = hostEnd
	}
	res.Rows, err = mergePartials(spec, res.Schema, devRows, hostRows)
	if err != nil {
		return nil, err
	}
	e.finishMetrics(res, t)
	res.Faults.DeviceAttempts = 1
	res.Elapsed += win.diff(e, &res.Faults)
	return res, nil
}

// mergePartials combines device and host partial results: aggregates
// fold algebraically (per group when grouping), projections concatenate.
//
// Caveat shared with any partial-aggregation scheme: a side whose scan
// matched no rows still reports a scalar zero row, which a MIN/MAX
// merge cannot distinguish from a real zero; SUM and COUNT merge
// exactly. Grouped aggregation is unaffected (empty sides contribute no
// groups).
func mergePartials(spec QuerySpec, out *schema.Schema, a, b []schema.Tuple) ([]schema.Tuple, error) {
	if len(spec.Aggs) == 0 {
		return append(a, b...), nil
	}
	ng := len(spec.GroupBy)
	groups := map[string]schema.Tuple{}
	var order []string
	var keyBuf []byte
	fold := func(rows []schema.Tuple) {
		for _, r := range rows {
			keyBuf = keyBuf[:0]
			for g := 0; g < ng; g++ {
				keyBuf = out.EncodeValue(keyBuf, g, r[g])
			}
			st, ok := groups[string(keyBuf)]
			if !ok {
				groups[string(keyBuf)] = cloneRow(r)
				order = append(order, string(keyBuf))
				continue
			}
			for i, agg := range spec.Aggs {
				c := ng + i
				switch agg.Kind {
				case plan.Sum, plan.Count:
					st[c] = schema.IntVal(st[c].Int + r[c].Int)
				case plan.Min:
					if r[c].Int < st[c].Int {
						st[c] = r[c]
					}
				case plan.Max:
					if r[c].Int > st[c].Int {
						st[c] = r[c]
					}
				}
			}
		}
	}
	fold(a)
	fold(b)
	outRows := make([]schema.Tuple, 0, len(order))
	for _, k := range order {
		outRows = append(outRows, groups[k])
	}
	return outRows, nil
}

// setScanRange finds the TableScan over the named file in an operator
// tree and restricts it to [from, from+count).
func setScanRange(op exec.Operator, file string, from, count int64) {
	if ts, ok := op.(*exec.TableScan); ok {
		if ts.File.Name() == file {
			ts.From, ts.Count = from, count
		}
		return
	}
	for _, c := range op.Children() {
		setScanRange(c, file, from, count)
	}
}

// cloneRow deep-copies a tuple, including Char bytes that alias a page
// buffer.
func cloneRow(t schema.Tuple) schema.Tuple {
	out := make(schema.Tuple, len(t))
	for i, v := range t {
		if v.Bytes != nil {
			v.Bytes = append([]byte(nil), v.Bytes...)
		}
		out[i] = v
	}
	return out
}
