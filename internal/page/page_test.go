package page

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"smartssd/internal/schema"
)

func testSchema() *schema.Schema {
	return schema.New(
		schema.Column{Name: "id", Kind: schema.Int64},
		schema.Column{Name: "qty", Kind: schema.Int32},
		schema.Column{Name: "ship", Kind: schema.Date},
		schema.Column{Name: "tag", Kind: schema.Char, Len: 10},
	)
}

func makeTuple(i int) schema.Tuple {
	return schema.Tuple{
		schema.IntVal(int64(i) * 1000),
		schema.IntVal(int64(i % 50)),
		schema.IntVal(int64(8000 + i)),
		schema.StrVal(fmt.Sprintf("t%03d", i)),
	}
}

func buildPage(t *testing.T, s *schema.Schema, l Layout, n int) []byte {
	t.Helper()
	b := NewBuilder(s, l)
	if n > b.Capacity() {
		t.Fatalf("test wants %d tuples, page holds %d", n, b.Capacity())
	}
	b.Reset(7)
	for i := 0; i < n; i++ {
		if !b.Append(makeTuple(i)) {
			t.Fatalf("Append(%d) reported full", i)
		}
	}
	out := make([]byte, PageSize)
	copy(out, b.Finish())
	return out
}

func TestCapacity(t *testing.T) {
	s := testSchema() // width 8+4+4+10 = 26
	if got, want := Capacity(s, NSM), (PageSize-HeaderSize)/(26+2); got != want {
		t.Errorf("NSM capacity = %d, want %d", got, want)
	}
	if got, want := Capacity(s, PAX), (PageSize-HeaderSize)/26; got != want {
		t.Errorf("PAX capacity = %d, want %d", got, want)
	}
	if Capacity(s, PAX) <= Capacity(s, NSM) {
		t.Error("PAX capacity should exceed NSM (no slot overhead)")
	}
}

func TestRoundTripBothLayouts(t *testing.T) {
	s := testSchema()
	for _, l := range []Layout{NSM, PAX} {
		t.Run(l.String(), func(t *testing.T) {
			const n = 100
			buf := buildPage(t, s, l, n)
			r, err := NewReader(s, buf)
			if err != nil {
				t.Fatalf("NewReader: %v", err)
			}
			if r.Count() != n {
				t.Fatalf("Count = %d, want %d", r.Count(), n)
			}
			if r.Layout() != l {
				t.Fatalf("Layout = %v, want %v", r.Layout(), l)
			}
			if r.PageNo() != 7 {
				t.Fatalf("PageNo = %d, want 7", r.PageNo())
			}
			var tup schema.Tuple
			for i := 0; i < n; i++ {
				tup = r.Tuple(tup, i)
				want := makeTuple(i)
				for c := 0; c < 3; c++ {
					if tup[c].Int != want[c].Int {
						t.Fatalf("tuple %d col %d = %d, want %d", i, c, tup[c].Int, want[c].Int)
					}
				}
				if !schema.Equal(schema.Char, tup[3], want[3]) {
					t.Fatalf("tuple %d tag = %q, want %q", i, tup[3].Bytes, want[3].Bytes)
				}
			}
		})
	}
}

func TestColumnAccessMatchesTuple(t *testing.T) {
	s := testSchema()
	for _, l := range []Layout{NSM, PAX} {
		buf := buildPage(t, s, l, 50)
		r, err := NewReader(s, buf)
		if err != nil {
			t.Fatal(err)
		}
		var tup schema.Tuple
		for i := 0; i < 50; i++ {
			tup = r.Tuple(tup, i)
			for c := 0; c < s.NumColumns(); c++ {
				v := r.Column(i, c)
				if s.Column(c).Kind == schema.Char {
					if !bytes.Equal(v.Bytes, tup[c].Bytes) {
						t.Fatalf("%v col(%d,%d) bytes mismatch", l, i, c)
					}
				} else if v.Int != tup[c].Int {
					t.Fatalf("%v col(%d,%d) = %d, want %d", l, i, c, v.Int, tup[c].Int)
				}
			}
		}
	}
}

func TestAppendUntilFull(t *testing.T) {
	s := testSchema()
	for _, l := range []Layout{NSM, PAX} {
		b := NewBuilder(s, l)
		b.Reset(0)
		n := 0
		for b.Append(makeTuple(n)) {
			n++
		}
		if n != b.Capacity() {
			t.Errorf("%v: appended %d, capacity %d", l, n, b.Capacity())
		}
		// One more append must keep failing without corrupting count.
		if b.Append(makeTuple(n)) {
			t.Errorf("%v: Append succeeded past capacity", l)
		}
		if b.Count() != b.Capacity() {
			t.Errorf("%v: Count = %d after overfill attempts", l, b.Count())
		}
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	s := testSchema()
	buf := buildPage(t, s, NSM, 10)
	buf[HeaderSize+3] ^= 0xFF
	if _, err := NewReader(s, buf); err == nil {
		t.Fatal("corrupted page passed validation")
	}
}

func TestValidateAfterBind(t *testing.T) {
	s := testSchema()
	buf := buildPage(t, s, PAX, 10)
	r, err := NewReader(s, buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate on clean page: %v", err)
	}
	buf[PageSize-1] ^= 1
	if err := r.Validate(); err == nil {
		t.Fatal("Validate missed corruption")
	}
}

func TestReaderRejectsBadInput(t *testing.T) {
	s := testSchema()
	if _, err := NewReader(s, make([]byte, 100)); err == nil {
		t.Error("short buffer accepted")
	}
	if _, err := NewReader(s, make([]byte, PageSize)); err == nil {
		t.Error("zero page accepted")
	}
	// Wrong schema width.
	buf := buildPage(t, s, NSM, 5)
	other := schema.New(schema.Column{Name: "x", Kind: schema.Int32})
	if _, err := NewReader(other, buf); err == nil {
		t.Error("schema-width mismatch accepted")
	}
}

func TestBuilderResetClearsPage(t *testing.T) {
	s := testSchema()
	b := NewBuilder(s, NSM)
	b.Reset(1)
	for i := 0; i < 20; i++ {
		b.Append(makeTuple(i))
	}
	b.Finish()
	b.Reset(2)
	b.Append(makeTuple(99))
	buf := make([]byte, PageSize)
	copy(buf, b.Finish())
	r, err := NewReader(s, buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 1 {
		t.Fatalf("after reset Count = %d, want 1", r.Count())
	}
	if r.PageNo() != 2 {
		t.Fatalf("after reset PageNo = %d, want 2", r.PageNo())
	}
	if got := r.Column(0, 0).Int; got != 99000 {
		t.Fatalf("tuple survived reset wrong: %d", got)
	}
}

func TestInt64ColumnStreaming(t *testing.T) {
	s := testSchema()
	for _, l := range []Layout{NSM, PAX} {
		buf := buildPage(t, s, l, 30)
		r, _ := NewReader(s, buf)
		var seen []int64
		r.Int64Column(1, func(i int, v int64) {
			seen = append(seen, v)
		})
		if len(seen) != 30 {
			t.Fatalf("%v: streamed %d values, want 30", l, len(seen))
		}
		for i, v := range seen {
			if v != int64(i%50) {
				t.Fatalf("%v: value %d = %d, want %d", l, i, v, i%50)
			}
		}
	}
}

func TestInt64ColumnOnCharPanics(t *testing.T) {
	s := testSchema()
	buf := buildPage(t, s, PAX, 1)
	r, _ := NewReader(s, buf)
	defer func() {
		if recover() == nil {
			t.Fatal("Int64Column on CHAR did not panic")
		}
	}()
	r.Int64Column(3, func(int, int64) {})
}

func TestTupleOutOfRangePanics(t *testing.T) {
	s := testSchema()
	buf := buildPage(t, s, NSM, 5)
	r, _ := NewReader(s, buf)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Tuple did not panic")
		}
	}()
	r.Tuple(nil, 5)
}

// Property: for random tuple data, NSM and PAX pages decode identically.
func TestLayoutsAgreeProperty(t *testing.T) {
	s := schema.New(
		schema.Column{Name: "a", Kind: schema.Int64},
		schema.Column{Name: "b", Kind: schema.Int32},
	)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 1
		tuples := make([]schema.Tuple, n)
		for i := range tuples {
			tuples[i] = schema.Tuple{schema.IntVal(rng.Int63()), schema.IntVal(int64(int32(rng.Int31())))}
		}
		var pages [2][]byte
		for li, l := range []Layout{NSM, PAX} {
			b := NewBuilder(s, l)
			b.Reset(0)
			for _, tup := range tuples {
				if !b.Append(tup) {
					return false
				}
			}
			pages[li] = append([]byte(nil), b.Finish()...)
		}
		rn, err1 := NewReader(s, pages[0])
		rp, err2 := NewReader(s, pages[1])
		if err1 != nil || err2 != nil {
			return false
		}
		var ta, tb schema.Tuple
		for i := 0; i < n; i++ {
			ta = rn.Tuple(ta, i)
			tb = rp.Tuple(tb, i)
			if ta[0].Int != tb[0].Int || ta[1].Int != tb[1].Int {
				return false
			}
			if ta[0].Int != tuples[i][0].Int {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPageAppendNSM(b *testing.B) { benchAppend(b, NSM) }
func BenchmarkPageAppendPAX(b *testing.B) { benchAppend(b, PAX) }

func benchAppend(b *testing.B, l Layout) {
	s := testSchema()
	bl := NewBuilder(s, l)
	tup := makeTuple(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bl.Reset(0)
		for bl.Append(tup) {
		}
		bl.Finish()
	}
}

func BenchmarkColumnScanNSM(b *testing.B) { benchColScan(b, NSM) }
func BenchmarkColumnScanPAX(b *testing.B) { benchColScan(b, PAX) }

func benchColScan(b *testing.B, l Layout) {
	s := testSchema()
	bl := NewBuilder(s, l)
	bl.Reset(0)
	i := 0
	for bl.Append(makeTuple(i)) {
		i++
	}
	buf := append([]byte(nil), bl.Finish()...)
	r, err := NewReader(s, buf)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sum int64
	for n := 0; n < b.N; n++ {
		r.Int64Column(1, func(_ int, v int64) { sum += v })
	}
	_ = sum
}
