// Package page implements the two on-device page layouts the paper
// evaluates: the traditional N-ary Storage Model (NSM) with slotted
// pages, and the PAX layout [Ailamaki et al., VLDB 2001] in which all
// values of a column are grouped together within the page.
//
// Both layouts share an 8 KB page size (PageSize) and a 16-byte header,
// and both store the fixed-width tuples produced by package schema. The
// layouts are bit-compatible targets of the same Builder API and are read
// back through the same Reader API, so host and device operators are
// layout-agnostic at the call-site and pay layout-specific costs only in
// the cost model.
//
// NSM page:
//
//	[header][tuple 0][tuple 1]...            ...[slot n-1]...[slot 0]
//	records grow from the left, a 2-byte slot directory grows from the
//	right; slot i holds the byte offset of tuple i.
//
// PAX page:
//
//	[header][minipage col0][minipage col1]...[minipage colk]
//	each minipage is a dense array of capacity fixed-width values;
//	tuple i's value for column j lives at minipage(j) + i*width(j).
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"smartssd/internal/schema"
)

// PageSize is the fixed page size in bytes, matching both the flash page
// and the database page size used in the paper's prototype.
const PageSize = 8192

// HeaderSize is the fixed page header size in bytes.
const HeaderSize = 16

// Layout selects the record organization within a page.
type Layout uint8

const (
	// NSM is the N-ary Storage Model: whole tuples stored contiguously
	// in a slotted page.
	NSM Layout = iota
	// PAX groups all values of each column together within the page.
	PAX
)

// String reports the conventional name of the layout.
func (l Layout) String() string {
	switch l {
	case NSM:
		return "NSM"
	case PAX:
		return "PAX"
	default:
		return fmt.Sprintf("Layout(%d)", uint8(l))
	}
}

// Header field offsets within a page.
const (
	offMagic  = 0 // uint16
	offLayout = 2 // uint8
	offVer    = 3 // uint8
	offCount  = 4 // uint16
	offWidth  = 6 // uint16: tuple width (sanity check against schema)
	offPageNo = 8 // uint32
	offCRC    = 12
)

const (
	magic   = 0xDBA5
	version = 1
)

// Errors reported by Validate and the Reader constructors.
var (
	ErrBadMagic    = errors.New("page: bad magic")
	ErrBadChecksum = errors.New("page: checksum mismatch")
	ErrBadLayout   = errors.New("page: unknown layout")
	ErrBadSize     = errors.New("page: wrong page size")
	ErrSchema      = errors.New("page: tuple width does not match schema")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Capacity reports the number of fixed-width tuples of schema s that fit
// in one page under the given layout. NSM pays a 2-byte slot per tuple;
// PAX packs minipages densely.
func Capacity(s *schema.Schema, l Layout) int {
	usable := PageSize - HeaderSize
	switch l {
	case NSM:
		return usable / (s.TupleWidth() + 2)
	case PAX:
		return usable / s.TupleWidth()
	default:
		panic(fmt.Sprintf("page: unknown layout %v", l))
	}
}

// paxMinipageOffset reports the byte offset of column col's minipage for
// a page with the given tuple capacity.
func paxMinipageOffset(s *schema.Schema, capacity, col int) int {
	// Columns are laid out in schema order; column j's minipage starts
	// after capacity values of every earlier column.
	return HeaderSize + capacity*s.Offset(col)
}

// A Builder fills pages of one schema and layout. The zero value is not
// usable; construct with NewBuilder. A Builder is reused across pages via
// Reset, and is not safe for concurrent use.
type Builder struct {
	schema   *schema.Schema
	layout   Layout
	capacity int
	buf      []byte
	count    int
	pageNo   uint32
	scratch  []byte
}

// NewBuilder returns a Builder producing pages of s under layout l.
func NewBuilder(s *schema.Schema, l Layout) *Builder {
	if l != NSM && l != PAX {
		panic(fmt.Sprintf("page: unknown layout %v", l))
	}
	return &Builder{
		schema:   s,
		layout:   l,
		capacity: Capacity(s, l),
		buf:      make([]byte, PageSize),
	}
}

// Capacity reports the per-page tuple capacity for this builder.
func (b *Builder) Capacity() int { return b.capacity }

// Count reports the number of tuples appended since the last Reset.
func (b *Builder) Count() int { return b.count }

// Reset clears the builder to start a new page with the given page
// number (a diagnostic identity stamped into the header).
func (b *Builder) Reset(pageNo uint32) {
	for i := range b.buf {
		b.buf[i] = 0
	}
	b.count = 0
	b.pageNo = pageNo
}

// Append adds tuple t to the page under construction. It reports false,
// without modifying the page, when the page is full.
func (b *Builder) Append(t schema.Tuple) bool {
	if b.count >= b.capacity {
		return false
	}
	switch b.layout {
	case NSM:
		off := HeaderSize + b.count*b.schema.TupleWidth()
		b.scratch = b.schema.EncodeTuple(b.scratch[:0], t)
		copy(b.buf[off:], b.scratch)
		slotOff := PageSize - 2*(b.count+1)
		binary.LittleEndian.PutUint16(b.buf[slotOff:], uint16(off))
	case PAX:
		for col := 0; col < b.schema.NumColumns(); col++ {
			w := b.schema.Column(col).Width()
			off := paxMinipageOffset(b.schema, b.capacity, col) + b.count*w
			b.scratch = b.schema.EncodeValue(b.scratch[:0], col, t[col])
			copy(b.buf[off:], b.scratch)
		}
	}
	b.count++
	return true
}

// Finish seals the page (header + checksum) and returns the page bytes.
// The returned slice aliases the builder's internal buffer and is only
// valid until the next Reset; callers persisting the page must copy it.
func (b *Builder) Finish() []byte {
	binary.LittleEndian.PutUint16(b.buf[offMagic:], magic)
	b.buf[offLayout] = byte(b.layout)
	b.buf[offVer] = version
	binary.LittleEndian.PutUint16(b.buf[offCount:], uint16(b.count))
	binary.LittleEndian.PutUint16(b.buf[offWidth:], uint16(b.schema.TupleWidth()))
	binary.LittleEndian.PutUint32(b.buf[offPageNo:], b.pageNo)
	binary.LittleEndian.PutUint32(b.buf[offCRC:], 0)
	crc := crc32.Checksum(b.buf, crcTable)
	binary.LittleEndian.PutUint32(b.buf[offCRC:], crc)
	return b.buf
}

// A Reader decodes a sealed page. Construct with NewReader, which
// validates the header; the Reader then provides random access to tuples
// and individual column values without copying.
type Reader struct {
	schema   *schema.Schema
	layout   Layout
	capacity int
	buf      []byte
	count    int
}

// NewReader wraps buf, a sealed page of schema s, validating the header
// and checksum.
func NewReader(s *schema.Schema, buf []byte) (*Reader, error) {
	r := ReaderFor(s)
	if err := r.Bind(buf); err != nil {
		return nil, err
	}
	return r, nil
}

// ReaderFor returns an unbound Reader for schema s. Bind must be called
// before any access; scans use one ReaderFor + repeated Bind to avoid
// per-page allocation.
func ReaderFor(s *schema.Schema) *Reader { return &Reader{schema: s} }

// Bind points an existing Reader at a new page buffer, validating it.
// Reusing a Reader across the pages of a scan avoids per-page allocation.
func (r *Reader) Bind(buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("%w: %d bytes", ErrBadSize, len(buf))
	}
	if binary.LittleEndian.Uint16(buf[offMagic:]) != magic {
		return ErrBadMagic
	}
	l := Layout(buf[offLayout])
	if l != NSM && l != PAX {
		return fmt.Errorf("%w: %d", ErrBadLayout, buf[offLayout])
	}
	if int(binary.LittleEndian.Uint16(buf[offWidth:])) != r.schema.TupleWidth() {
		return fmt.Errorf("%w: page says %d, schema says %d", ErrSchema,
			binary.LittleEndian.Uint16(buf[offWidth:]), r.schema.TupleWidth())
	}
	// Verify without touching buf: the checksum was computed with the
	// CRC field zeroed, so feed the zeros from a scratch word instead of
	// writing them into the page. Page buffers alias device storage that
	// concurrent readers (engine clones) may share; Bind must not write.
	var zeroCRC [4]byte
	stored := binary.LittleEndian.Uint32(buf[offCRC:])
	sum := crc32.Checksum(buf[:offCRC], crcTable)
	sum = crc32.Update(sum, crcTable, zeroCRC[:])
	sum = crc32.Update(sum, crcTable, buf[offCRC+4:])
	if sum != stored {
		return fmt.Errorf("%w: stored %#x computed %#x", ErrBadChecksum, stored, sum)
	}
	r.layout = l
	r.capacity = Capacity(r.schema, l)
	r.buf = buf
	r.count = int(binary.LittleEndian.Uint16(buf[offCount:]))
	return nil
}

// Layout reports the page's record organization.
func (r *Reader) Layout() Layout { return r.layout }

// Count reports the number of tuples stored in the page.
func (r *Reader) Count() int { return r.count }

// PageNo reports the page number stamped at build time.
func (r *Reader) PageNo() uint32 {
	return binary.LittleEndian.Uint32(r.buf[offPageNo:])
}

// Data reports the underlying page bytes (aliased, not copied).
func (r *Reader) Data() []byte { return r.buf }

// Tuple decodes tuple i into dst (grown as needed) and returns it.
// Char values alias the page buffer.
func (r *Reader) Tuple(dst schema.Tuple, i int) schema.Tuple {
	if i < 0 || i >= r.count {
		panic(fmt.Sprintf("page: tuple index %d out of range [0,%d)", i, r.count))
	}
	switch r.layout {
	case NSM:
		off := r.nsmTupleOffset(i)
		return r.schema.DecodeTuple(dst, r.buf[off:off+r.schema.TupleWidth()])
	default: // PAX
		if cap(dst) < r.schema.NumColumns() {
			dst = make(schema.Tuple, r.schema.NumColumns())
		}
		dst = dst[:r.schema.NumColumns()]
		for col := range dst {
			dst[col] = r.Column(i, col)
		}
		return dst
	}
}

func (r *Reader) nsmTupleOffset(i int) int {
	slotOff := PageSize - 2*(i+1)
	return int(binary.LittleEndian.Uint16(r.buf[slotOff:]))
}

// Column returns the value of column col for tuple i. For PAX pages this
// touches only that column's minipage; for NSM it indexes into the
// record. Char values alias the page buffer.
func (r *Reader) Column(i, col int) schema.Value {
	if i < 0 || i >= r.count {
		panic(fmt.Sprintf("page: tuple index %d out of range [0,%d)", i, r.count))
	}
	switch r.layout {
	case NSM:
		off := r.nsmTupleOffset(i)
		return r.schema.DecodeColumn(r.buf[off:off+r.schema.TupleWidth()], col)
	default: // PAX
		c := r.schema.Column(col)
		w := c.Width()
		off := paxMinipageOffset(r.schema, r.capacity, col) + i*w
		switch c.Kind {
		case schema.Int32, schema.Date:
			return schema.Value{Int: int64(int32(binary.LittleEndian.Uint32(r.buf[off:])))}
		case schema.Int64:
			return schema.Value{Int: int64(binary.LittleEndian.Uint64(r.buf[off:]))}
		default: // Char
			return schema.Value{Bytes: r.buf[off : off+w]}
		}
	}
}

// Int64Column calls fn for each tuple's integer value of column col,
// in tuple order. It is the streaming fast path device-side predicate
// evaluation uses on PAX minipages (and works, more expensively, on NSM).
// It panics if the column is a Char column.
func (r *Reader) Int64Column(col int, fn func(i int, v int64)) {
	c := r.schema.Column(col)
	if c.Kind == schema.Char {
		panic(fmt.Sprintf("page: Int64Column on CHAR column %q", c.Name))
	}
	for i := 0; i < r.count; i++ {
		fn(i, r.Column(i, col).Int)
	}
}

// Int64ColumnInto bulk-decodes column col of every tuple in the page
// into dst (grown as needed) and returns dst[:Count]. It hoists the
// schema lookup and offset arithmetic Column performs per call out of
// the loop: on PAX pages this is a tight sweep over one minipage, on
// NSM a strided decode through the slot directory. It panics if the
// column is a Char column.
func (r *Reader) Int64ColumnInto(col int, dst []int64) []int64 {
	c := r.schema.Column(col)
	if c.Kind == schema.Char {
		panic(fmt.Sprintf("page: Int64ColumnInto on CHAR column %q", c.Name))
	}
	if cap(dst) < r.count {
		dst = make([]int64, r.count)
	}
	dst = dst[:r.count]
	switch r.layout {
	case NSM:
		fieldOff := r.schema.Offset(col)
		if c.Kind == schema.Int64 {
			for i := 0; i < r.count; i++ {
				off := r.nsmTupleOffset(i) + fieldOff
				dst[i] = int64(binary.LittleEndian.Uint64(r.buf[off:]))
			}
		} else {
			for i := 0; i < r.count; i++ {
				off := r.nsmTupleOffset(i) + fieldOff
				dst[i] = int64(int32(binary.LittleEndian.Uint32(r.buf[off:])))
			}
		}
	default: // PAX
		base := paxMinipageOffset(r.schema, r.capacity, col)
		if c.Kind == schema.Int64 {
			mp := r.buf[base : base+8*r.count]
			for i := 0; i < r.count; i++ {
				dst[i] = int64(binary.LittleEndian.Uint64(mp[8*i:]))
			}
		} else {
			mp := r.buf[base : base+4*r.count]
			for i := 0; i < r.count; i++ {
				dst[i] = int64(int32(binary.LittleEndian.Uint32(mp[4*i:])))
			}
		}
	}
	return dst
}

// BytesColumnInto bulk-decodes Char column col of every tuple into dst
// (grown as needed) and returns dst[:Count]. The element slices alias
// the page buffer, exactly like Column; callers retaining them past the
// page's reuse must copy. It panics on a non-Char column.
func (r *Reader) BytesColumnInto(col int, dst [][]byte) [][]byte {
	c := r.schema.Column(col)
	if c.Kind != schema.Char {
		panic(fmt.Sprintf("page: BytesColumnInto on %v column %q", c.Kind, c.Name))
	}
	if cap(dst) < r.count {
		dst = make([][]byte, r.count)
	}
	dst = dst[:r.count]
	w := c.Len
	switch r.layout {
	case NSM:
		fieldOff := r.schema.Offset(col)
		for i := 0; i < r.count; i++ {
			off := r.nsmTupleOffset(i) + fieldOff
			dst[i] = r.buf[off : off+w]
		}
	default: // PAX
		base := paxMinipageOffset(r.schema, r.capacity, col)
		for i := 0; i < r.count; i++ {
			off := base + i*w
			dst[i] = r.buf[off : off+w]
		}
	}
	return dst
}

// ReplaceTuple overwrites tuple i of the sealed page in buf with the
// encoded tuple bytes (schema.EncodeTuple format) and reseals the
// checksum. It is the redo-apply primitive crash recovery uses to
// install a WAL after-image without rebuilding the whole page. The
// page is modified in place; buf must not alias storage concurrent
// readers are scanning.
func ReplaceTuple(s *schema.Schema, buf []byte, i int, tuple []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("%w: %d bytes", ErrBadSize, len(buf))
	}
	if binary.LittleEndian.Uint16(buf[offMagic:]) != magic {
		return ErrBadMagic
	}
	l := Layout(buf[offLayout])
	if l != NSM && l != PAX {
		return fmt.Errorf("%w: %d", ErrBadLayout, buf[offLayout])
	}
	if int(binary.LittleEndian.Uint16(buf[offWidth:])) != s.TupleWidth() {
		return fmt.Errorf("%w: page says %d, schema says %d", ErrSchema,
			binary.LittleEndian.Uint16(buf[offWidth:]), s.TupleWidth())
	}
	if len(tuple) != s.TupleWidth() {
		return fmt.Errorf("%w: after-image is %d bytes, schema tuple is %d",
			ErrSchema, len(tuple), s.TupleWidth())
	}
	count := int(binary.LittleEndian.Uint16(buf[offCount:]))
	if i < 0 || i >= count {
		return fmt.Errorf("page: replace tuple %d out of range [0,%d)", i, count)
	}
	switch l {
	case NSM:
		slotOff := PageSize - 2*(i+1)
		off := int(binary.LittleEndian.Uint16(buf[slotOff:]))
		if off < HeaderSize || off+s.TupleWidth() > PageSize-2*count {
			return fmt.Errorf("page: slot %d points outside the record area (offset %d)", i, off)
		}
		copy(buf[off:off+s.TupleWidth()], tuple)
	case PAX:
		// EncodeTuple is the per-column concatenation of EncodeValue,
		// so each minipage cell is the matching fixed-width slice of
		// the encoded tuple.
		capacity := Capacity(s, PAX)
		for col := 0; col < s.NumColumns(); col++ {
			w := s.Column(col).Width()
			cell := paxMinipageOffset(s, capacity, col) + i*w
			copy(buf[cell:cell+w], tuple[s.Offset(col):s.Offset(col)+w])
		}
	}
	binary.LittleEndian.PutUint32(buf[offCRC:], 0)
	crc := crc32.Checksum(buf, crcTable)
	binary.LittleEndian.PutUint32(buf[offCRC:], crc)
	return nil
}

// Validate re-checks the page checksum, reporting any corruption.
func (r *Reader) Validate() error {
	stored := binary.LittleEndian.Uint32(r.buf[offCRC:])
	binary.LittleEndian.PutUint32(r.buf[offCRC:], 0)
	sum := crc32.Checksum(r.buf, crcTable)
	binary.LittleEndian.PutUint32(r.buf[offCRC:], stored)
	if sum != stored {
		return fmt.Errorf("%w: stored %#x computed %#x", ErrBadChecksum, stored, sum)
	}
	return nil
}
