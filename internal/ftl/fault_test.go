package ftl

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
	"time"

	"smartssd/internal/fault"
	"smartssd/internal/nand"
	"smartssd/internal/sim"
)

// newFaultyFTL builds an FTL whose NAND array injects faults per fc,
// returning the injector for direct manipulation.
func newFaultyFTL(t *testing.T, geo nand.Geometry, cfg Config, fc fault.Config) (*FTL, *fault.Injector) {
	t.Helper()
	arr, err := nand.NewArray(geo, nand.Timing{
		ReadLatency: 50 * time.Microsecond, ChannelRate: sim.MBps(200),
	})
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(fc)
	arr.SetInjector(inj)
	f, err := New(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.SetInjector(inj)
	return f, inj
}

// Transient read errors must be absorbed by the retry ladder: with a
// moderate error rate every read still succeeds (the chance of
// MaxReadRetries+1 consecutive failures is negligible, and the fixed
// seed makes the outcome reproducible) and the stats show recoveries.
func TestReadRetryRecoversTransientErrors(t *testing.T) {
	f, _ := newFaultyFTL(t, smallGeo(), Config{}, fault.Config{Seed: 11, ReadErrorRate: 0.1})
	const n = 64
	for l := LBA(0); l < n; l++ {
		if err := f.Write(l, pageOf(f, uint64(l)+7)); err != nil {
			t.Fatalf("Write(%d): %v", l, err)
		}
	}
	for round := 0; round < 5; round++ {
		for l := LBA(0); l < n; l++ {
			got, err := f.Read(l)
			if err != nil {
				t.Fatalf("round %d Read(%d): %v", round, l, err)
			}
			if binary.LittleEndian.Uint64(got) != uint64(l)+7 {
				t.Fatalf("round %d lba %d returned wrong data", round, l)
			}
		}
	}
	s := f.Stats()
	if s.ReadRetries == 0 || s.RecoveredReads == 0 {
		t.Fatalf("retry ladder never exercised: %+v", s)
	}
	if s.UncorrectableReads != 0 {
		t.Fatalf("transient-only config produced %d uncorrectable reads", s.UncorrectableReads)
	}
}

// A sticky uncorrectable page fails every retry and surfaces as a
// typed nand.ErrUncorrectable the host can match with errors.Is.
func TestStickyUncorrectableSurfacesTypedError(t *testing.T) {
	f, inj := newFaultyFTL(t, smallGeo(), Config{}, fault.Config{Armed: true})
	if err := f.Write(3, pageOf(f, 99)); err != nil {
		t.Fatal(err)
	}
	ppa, ok := f.Lookup(3)
	if !ok {
		t.Fatal("lba 3 unmapped after write")
	}
	inj.MarkUncorrectable(uint64(ppa))
	if _, err := f.Read(3); !errors.Is(err, nand.ErrUncorrectable) {
		t.Fatalf("Read of poisoned page err = %v, want ErrUncorrectable", err)
	}
	if s := f.Stats(); s.UncorrectableReads == 0 {
		t.Fatalf("uncorrectable read not counted: %+v", s)
	}
	// Clearing the sticky page (as the FTL would after rewriting the
	// data elsewhere) restores readability.
	inj.ClearUncorrectable(uint64(ppa))
	got, err := f.Read(3)
	if err != nil {
		t.Fatalf("Read after clear: %v", err)
	}
	if binary.LittleEndian.Uint64(got) != 99 {
		t.Fatal("data lost across mark/clear cycle")
	}
}

// Failed page programs must be remapped to fresh slots without the
// host noticing: every write lands, every read-back matches.
func TestProgramFailureRemapsWrites(t *testing.T) {
	f, _ := newFaultyFTL(t, smallGeo(), Config{}, fault.Config{Seed: 5, ProgramFailRate: 0.15})
	const n = 100
	for l := LBA(0); l < n; l++ {
		if err := f.Write(l, pageOf(f, uint64(l)*3+1)); err != nil {
			t.Fatalf("Write(%d): %v", l, err)
		}
	}
	for l := LBA(0); l < n; l++ {
		got, err := f.Read(l)
		if err != nil {
			t.Fatalf("Read(%d): %v", l, err)
		}
		if binary.LittleEndian.Uint64(got) != uint64(l)*3+1 {
			t.Fatalf("lba %d corrupted by program remap", l)
		}
	}
	if s := f.Stats(); s.RemappedPrograms == 0 {
		t.Fatalf("15%% program-fail rate never triggered a remap: %+v", s)
	}
}

// Erase failures during GC churn retire blocks as grown-bad; the
// capacity loss comes out of over-provisioning and no data is lost.
func TestEraseFailureGrowsBadBlocksAndPreservesData(t *testing.T) {
	geo := smallGeo()
	f, _ := newFaultyFTL(t, geo, Config{OverProvision: 0.25, GCLowWater: 2},
		fault.Config{Seed: 3, EraseFailRate: 0.1})
	n := f.LogicalPages()
	shadow := make(map[LBA]uint64)
	rng := rand.New(rand.NewSource(7))
	for l := LBA(0); int64(l) < n; l++ {
		tag := rng.Uint64()
		if err := f.Write(l, pageOf(f, tag)); err != nil {
			t.Fatalf("fill Write(%d): %v", l, err)
		}
		shadow[l] = tag
	}
	// Churn until GC has both run and retired at least one block; stop
	// there so repeated retirements don't eat the whole over-provision
	// budget (a real drive at that point is end-of-life, not faulty).
	for i := int64(0); i < 6*n; i++ {
		s := f.Stats()
		if s.GCRuns > 0 && s.GrownBadBlocks > 0 {
			break
		}
		l := LBA(rng.Int63n(n))
		tag := rng.Uint64()
		if err := f.Write(l, pageOf(f, tag)); err != nil {
			t.Fatalf("overwrite %d of lba %d: %v", i, l, err)
		}
		shadow[l] = tag
	}
	for l, tag := range shadow {
		got, err := f.Read(l)
		if err != nil {
			t.Fatalf("Read(%d) after faulty GC churn: %v", l, err)
		}
		if binary.LittleEndian.Uint64(got) != tag {
			t.Fatalf("lba %d corrupted after faulty GC churn", l)
		}
	}
	s := f.Stats()
	if s.GCRuns == 0 {
		t.Fatal("workload did not trigger GC")
	}
	if s.GrownBadBlocks == 0 {
		t.Fatalf("10%% erase-fail rate grew no bad blocks: %+v", s)
	}
}
