package ftl

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
	"time"

	"smartssd/internal/nand"
	"smartssd/internal/sim"
)

func smallGeo() nand.Geometry {
	return nand.Geometry{
		Channels:        4,
		ChipsPerChannel: 1,
		BlocksPerChip:   8,
		PagesPerBlock:   8,
		PageSize:        256,
	}
}

func newFTL(t *testing.T, geo nand.Geometry, cfg Config) *FTL {
	t.Helper()
	arr, err := nand.NewArray(geo, nand.Timing{
		ReadLatency: 50 * time.Microsecond, ChannelRate: sim.MBps(200),
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func pageOf(f *FTL, tag uint64) []byte {
	b := make([]byte, f.PageSize())
	binary.LittleEndian.PutUint64(b, tag)
	return b
}

func TestLogicalCapacityRespectsOverProvision(t *testing.T) {
	f := newFTL(t, smallGeo(), Config{OverProvision: 0.25})
	raw := smallGeo().TotalPages()
	if got, want := f.LogicalPages(), int64(float64(raw)*0.75); got != want {
		t.Fatalf("LogicalPages = %d, want %d", got, want)
	}
	if f.LogicalBytes() != f.LogicalPages()*256 {
		t.Fatal("LogicalBytes inconsistent")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := newFTL(t, smallGeo(), Config{})
	for l := LBA(0); l < 20; l++ {
		if err := f.Write(l, pageOf(f, uint64(l)+1000)); err != nil {
			t.Fatalf("Write(%d): %v", l, err)
		}
	}
	for l := LBA(0); l < 20; l++ {
		got, err := f.Read(l)
		if err != nil {
			t.Fatalf("Read(%d): %v", l, err)
		}
		if binary.LittleEndian.Uint64(got) != uint64(l)+1000 {
			t.Fatalf("Read(%d) returned wrong page", l)
		}
	}
}

func TestOverwriteRemaps(t *testing.T) {
	f := newFTL(t, smallGeo(), Config{})
	f.Write(5, pageOf(f, 1))
	p1, _ := f.Lookup(5)
	f.Write(5, pageOf(f, 2))
	p2, ok := f.Lookup(5)
	if !ok {
		t.Fatal("LBA 5 unmapped after overwrite")
	}
	if p1 == p2 {
		t.Fatal("overwrite did not allocate a fresh physical page")
	}
	got, _ := f.Read(5)
	if binary.LittleEndian.Uint64(got) != 2 {
		t.Fatal("overwrite did not take effect")
	}
}

func TestReadUnmapped(t *testing.T) {
	f := newFTL(t, smallGeo(), Config{})
	if _, err := f.Read(3); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("err = %v, want ErrUnmapped", err)
	}
}

func TestLBABounds(t *testing.T) {
	f := newFTL(t, smallGeo(), Config{})
	if err := f.Write(LBA(f.LogicalPages()), pageOf(f, 0)); !errors.Is(err, ErrLBAOutOfRange) {
		t.Errorf("Write past end err = %v", err)
	}
	if _, err := f.Read(-1); !errors.Is(err, ErrLBAOutOfRange) {
		t.Errorf("Read(-1) err = %v", err)
	}
	if err := f.Trim(LBA(f.LogicalPages())); !errors.Is(err, ErrLBAOutOfRange) {
		t.Errorf("Trim past end err = %v", err)
	}
}

func TestTrim(t *testing.T) {
	f := newFTL(t, smallGeo(), Config{})
	f.Write(7, pageOf(f, 1))
	if err := f.Trim(7); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Lookup(7); ok {
		t.Fatal("LBA still mapped after Trim")
	}
	if _, err := f.Read(7); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("read after trim err = %v", err)
	}
	// Trim of unmapped LBA is a no-op, not an error.
	if err := f.Trim(7); err != nil {
		t.Fatalf("double trim: %v", err)
	}
}

func TestSequentialWritesStripeAcrossChannels(t *testing.T) {
	geo := smallGeo()
	f := newFTL(t, geo, Config{})
	seen := make(map[int]bool)
	for l := LBA(0); l < LBA(geo.Channels); l++ {
		f.Write(l, pageOf(f, uint64(l)))
		p, _ := f.Lookup(l)
		seen[geo.Decompose(p).Channel] = true
	}
	if len(seen) != geo.Channels {
		t.Fatalf("first %d sequential writes hit %d channels, want all %d",
			geo.Channels, len(seen), geo.Channels)
	}
}

// Fill the device, then overwrite it repeatedly: GC must reclaim space
// and every LBA must remain readable with its latest contents.
func TestGarbageCollectionPreservesData(t *testing.T) {
	geo := smallGeo()
	f := newFTL(t, geo, Config{OverProvision: 0.25, GCLowWater: 2})
	n := f.LogicalPages()
	shadow := make(map[LBA]uint64)
	rng := rand.New(rand.NewSource(42))
	// Initial fill.
	for l := LBA(0); int64(l) < n; l++ {
		tag := rng.Uint64()
		if err := f.Write(l, pageOf(f, tag)); err != nil {
			t.Fatalf("fill Write(%d): %v", l, err)
		}
		shadow[l] = tag
	}
	// Random overwrites, 4x the device size, forcing GC.
	for i := int64(0); i < 4*n; i++ {
		l := LBA(rng.Int63n(n))
		tag := rng.Uint64()
		if err := f.Write(l, pageOf(f, tag)); err != nil {
			t.Fatalf("overwrite %d of lba %d: %v", i, l, err)
		}
		shadow[l] = tag
	}
	for l, tag := range shadow {
		got, err := f.Read(l)
		if err != nil {
			t.Fatalf("Read(%d) after GC churn: %v", l, err)
		}
		if binary.LittleEndian.Uint64(got) != tag {
			t.Fatalf("lba %d corrupted after GC churn", l)
		}
	}
	s := f.Stats()
	if s.GCRuns == 0 {
		t.Fatal("workload did not trigger GC; test is not exercising the collector")
	}
	if s.WriteAmplification < 1.0 {
		t.Fatalf("write amplification %.2f < 1", s.WriteAmplification)
	}
}

func TestStatsZeroValue(t *testing.T) {
	f := newFTL(t, smallGeo(), Config{})
	s := f.Stats()
	if s.HostWrites != 0 || s.WriteAmplification != 0 {
		t.Fatalf("fresh Stats = %+v", s)
	}
}

func TestSequentialReadAfterFullFill(t *testing.T) {
	f := newFTL(t, smallGeo(), Config{})
	n := f.LogicalPages()
	for l := LBA(0); int64(l) < n; l++ {
		if err := f.Write(l, pageOf(f, uint64(l))); err != nil {
			t.Fatalf("Write(%d/%d): %v", l, n, err)
		}
	}
	for l := LBA(0); int64(l) < n; l++ {
		got, err := f.Read(l)
		if err != nil {
			t.Fatalf("Read(%d): %v", l, err)
		}
		want := pageOf(f, uint64(l))
		if !bytes.Equal(got, want) {
			t.Fatalf("lba %d mismatch", l)
		}
	}
}

func TestExcessiveOverProvisionRejected(t *testing.T) {
	arr, _ := nand.NewArray(smallGeo(), nand.Timing{})
	if _, err := New(arr, Config{OverProvision: 0.9999}); err == nil {
		t.Fatal("FTL accepted over-provision that leaves no logical space")
	}
}

// A single-channel device with minimal over-provisioning forces the
// in-place compaction path: free blocks run out while stale pages sit in
// full blocks, and the FTL must reclaim via its RAM staging buffer
// rather than deadlock.
func TestCompactionUnderTightOverProvision(t *testing.T) {
	geo := nand.Geometry{
		Channels: 1, ChipsPerChannel: 1,
		BlocksPerChip: 4, PagesPerBlock: 4, PageSize: 128,
	}
	f := newFTL(t, geo, Config{OverProvision: 0.25, GCLowWater: 1})
	n := f.LogicalPages() // 12 of 16 raw pages
	shadow := make([]uint64, n)
	write := func(l LBA, tag uint64) {
		t.Helper()
		if err := f.Write(l, pageOf(f, tag)); err != nil {
			t.Fatalf("Write(%d, %d): %v", l, tag, err)
		}
		shadow[l] = tag
	}
	var tag uint64
	for l := LBA(0); int64(l) < n; l++ {
		tag++
		write(l, tag)
	}
	for round := 0; round < 8; round++ {
		for l := LBA(0); int64(l) < n; l++ {
			tag++
			write(l, tag)
		}
	}
	for l := LBA(0); int64(l) < n; l++ {
		got, err := f.Read(l)
		if err != nil {
			t.Fatalf("Read(%d): %v", l, err)
		}
		if binary.LittleEndian.Uint64(got) != shadow[l] {
			t.Fatalf("lba %d corrupted under compaction churn", l)
		}
	}
	if f.Stats().GCRuns == 0 {
		t.Fatal("tight workload never reclaimed a block")
	}
}
