// Package ftl implements a page-mapped Flash Translation Layer: the
// firmware component that maps host Logical Block Addresses (LBAs) to
// Physical Block Addresses in the NAND array (§2 of the paper).
//
// The design is a straightforward page-level FTL of the kind embedded
// controllers run:
//
//   - A full page map (one entry per LBA) plus a reverse map for GC.
//   - Write allocation stripes consecutive writes round-robin across the
//     flash channels, then across chips, which is what makes the array's
//     channel-level parallelism visible to sequential I/O (and is the
//     source of the "internal bandwidth" the paper exploits).
//   - Over-provisioned blocks feed a per-channel free list; greedy
//     cost-based garbage collection reclaims the lowest-valid-count block
//     when a channel's free list runs low.
//
// The FTL performs data movement against the nand.Array (bit-exact) but
// no timing; the controller in package ssd charges time for the
// operations the FTL reports.
package ftl

import (
	"errors"
	"fmt"
	"sync/atomic"

	"smartssd/internal/fault"
	"smartssd/internal/nand"
)

// DefaultOverProvision is the fraction of raw capacity reserved for GC
// headroom when Config.OverProvision is zero.
const DefaultOverProvision = 0.125

// Config parameterizes the FTL.
type Config struct {
	// OverProvision is the fraction of raw flash reserved (invisible to
	// the host). Defaults to DefaultOverProvision.
	OverProvision float64
	// GCLowWater is the per-channel free-block count that triggers
	// garbage collection. Defaults to 2.
	GCLowWater int
	// MaxReadRetries bounds the read-retry ladder walked after a
	// transient NAND read error before the page is declared
	// uncorrectable. Defaults to 3.
	MaxReadRetries int
	// MaxProgramRetries bounds how many fresh page slots a single write
	// may consume when programs keep failing. Defaults to 4.
	MaxProgramRetries int
}

func (c *Config) fill() {
	if c.OverProvision <= 0 {
		c.OverProvision = DefaultOverProvision
	}
	if c.GCLowWater <= 0 {
		c.GCLowWater = 2
	}
	if c.MaxReadRetries <= 0 {
		c.MaxReadRetries = 3
	}
	if c.MaxProgramRetries <= 0 {
		c.MaxProgramRetries = 4
	}
}

// LBA is a host logical block (page) address.
type LBA int64

const invalid = -1

// Errors reported by FTL operations.
var (
	ErrLBAOutOfRange = errors.New("ftl: lba out of range")
	ErrUnmapped      = errors.New("ftl: read of unmapped lba")
	ErrDeviceFull    = errors.New("ftl: no free blocks (device full)")
)

// FTL is a page-mapped flash translation layer over a nand.Array.
// Not safe for concurrent use (the simulator is single-threaded).
type FTL struct {
	array *nand.Array
	geo   nand.Geometry
	cfg   Config

	logicalPages int64
	l2p          []nand.PPA // LBA -> PPA, invalid if unmapped
	p2l          []LBA      // PPA -> LBA, invalid if free/stale

	validCount []int            // valid pages per block
	freeBlocks [][]nand.BlockID // per channel
	active     []nand.BlockID   // open write block per channel
	frontier   []int            // next page index in active block, per channel
	nextChan   int              // round-robin write pointer

	hostReads  int64 // pages read on behalf of the host
	hostWrites int64 // pages written by the host
	gcWrites   int64 // pages relocated by GC
	gcRuns     int64
	collecting bool // guards against re-entrant GC during relocation

	inj                *fault.Injector       // nil unless fault injection is enabled
	badBlocks          map[nand.BlockID]bool // grown-bad blocks, retired from service
	readRetries        int64                 // NAND re-reads performed after transient errors
	recoveredReads     int64                 // reads that succeeded after at least one retry
	uncorrectableReads int64                 // reads lost after the retry ladder
	remappedPrograms   int64                 // page slots abandoned to program failures

	// cow marks the mapping tables, free lists, and bad-block set as
	// shared with at least one clone; the first mutating entry point
	// (Write, Trim) privatizes them. Lookups and reads never
	// privatize. Atomic so concurrent Clones of one read-only FTL stay
	// race-free.
	cow atomic.Bool
}

// New builds an FTL over array.
func New(array *nand.Array, cfg Config) (*FTL, error) {
	cfg.fill()
	geo := array.Geometry()
	raw := geo.TotalPages()
	logical := int64(float64(raw) * (1 - cfg.OverProvision))
	if logical < 1 {
		return nil, fmt.Errorf("ftl: over-provision %.2f leaves no logical space", cfg.OverProvision)
	}
	f := &FTL{
		array:        array,
		geo:          geo,
		cfg:          cfg,
		logicalPages: logical,
		l2p:          make([]nand.PPA, logical),
		p2l:          make([]LBA, raw),
		validCount:   make([]int, geo.TotalBlocks()),
		badBlocks:    make(map[nand.BlockID]bool),
		freeBlocks:   make([][]nand.BlockID, geo.Channels),
		active:       make([]nand.BlockID, geo.Channels),
		frontier:     make([]int, geo.Channels),
	}
	for i := range f.l2p {
		f.l2p[i] = invalid
	}
	for i := range f.p2l {
		f.p2l[i] = invalid
	}
	// Distribute blocks to per-channel free lists, then open one active
	// block per channel.
	for b := nand.BlockID(0); int64(b) < geo.TotalBlocks(); b++ {
		ch := geo.ChannelOf(b)
		f.freeBlocks[ch] = append(f.freeBlocks[ch], b)
	}
	for ch := 0; ch < geo.Channels; ch++ {
		blk, err := f.takeFree(ch)
		if err != nil {
			return nil, err
		}
		f.active[ch] = blk
		f.frontier[ch] = 0
	}
	return f, nil
}

// SetInjector attaches a fault injector to the FTL's reliability
// machinery (retry and remap bookkeeping). The same injector should be
// attached to the underlying nand.Array; a nil injector disables it.
func (f *FTL) SetInjector(inj *fault.Injector) { f.inj = inj }

// Clone returns an FTL over array with the same logical-to-physical
// mapping, free lists, write frontiers, and cumulative statistics as
// the receiver. The mapping tables are shared copy-on-write: both
// sides read the shared tables until one of them writes or trims, at
// which point that side deep-copies its tables first (privatize), so a
// clone's writes and garbage collection never disturb the original.
// Cloning is therefore O(1) in device size for read-only workloads.
// Concurrent Clones of one FTL are safe (the shared mark is atomic) as
// long as no sharer is mutating; concurrent use of the resulting
// clones is always safe. array should be a Clone of the receiver's
// array so both sides agree on page state; the clone keeps the
// receiver's injector until SetInjector replaces it.
func (f *FTL) Clone(array *nand.Array) *FTL {
	f.cow.Store(true)
	nf := &FTL{
		array:        array,
		geo:          f.geo,
		cfg:          f.cfg,
		logicalPages: f.logicalPages,
		l2p:          f.l2p,
		p2l:          f.p2l,
		validCount:   f.validCount,
		freeBlocks:   f.freeBlocks,
		active:       f.active,
		frontier:     f.frontier,
		nextChan:     f.nextChan,

		hostReads:  f.hostReads,
		hostWrites: f.hostWrites,
		gcWrites:   f.gcWrites,
		gcRuns:     f.gcRuns,
		collecting: f.collecting,

		inj:                f.inj,
		badBlocks:          f.badBlocks,
		readRetries:        f.readRetries,
		recoveredReads:     f.recoveredReads,
		uncorrectableReads: f.uncorrectableReads,
		remappedPrograms:   f.remappedPrograms,
	}
	nf.cow.Store(true)
	return nf
}

// privatize deep-copies the copy-on-write tables before the first
// mutation, detaching this FTL from any sharers. The free-list inner
// slices are copied too: takeFree reslices them and a later append
// would otherwise write into a backing array a sharer still reads.
func (f *FTL) privatize() {
	if !f.cow.Load() {
		return
	}
	f.l2p = append([]nand.PPA(nil), f.l2p...)
	f.p2l = append([]LBA(nil), f.p2l...)
	f.validCount = append([]int(nil), f.validCount...)
	f.active = append([]nand.BlockID(nil), f.active...)
	f.frontier = append([]int(nil), f.frontier...)
	fb := make([][]nand.BlockID, len(f.freeBlocks))
	for ch := range f.freeBlocks {
		fb[ch] = append([]nand.BlockID(nil), f.freeBlocks[ch]...)
	}
	f.freeBlocks = fb
	bad := make(map[nand.BlockID]bool, len(f.badBlocks))
	for b, v := range f.badBlocks {
		bad[b] = v
	}
	f.badBlocks = bad
	f.cow.Store(false)
}

// LogicalPages reports the host-visible capacity in pages.
func (f *FTL) LogicalPages() int64 { return f.logicalPages }

// LogicalBytes reports the host-visible capacity in bytes.
func (f *FTL) LogicalBytes() int64 { return f.logicalPages * int64(f.geo.PageSize) }

// PageSize reports the page size in bytes.
func (f *FTL) PageSize() int { return f.geo.PageSize }

func (f *FTL) checkLBA(l LBA) error {
	if l < 0 || int64(l) >= f.logicalPages {
		return fmt.Errorf("%w: %d (capacity %d pages)", ErrLBAOutOfRange, l, f.logicalPages)
	}
	return nil
}

func (f *FTL) takeFree(ch int) (nand.BlockID, error) {
	list := f.freeBlocks[ch]
	if len(list) == 0 {
		return 0, fmt.Errorf("%w: channel %d", ErrDeviceFull, ch)
	}
	blk := list[len(list)-1]
	f.freeBlocks[ch] = list[:len(list)-1]
	return blk, nil
}

// Lookup translates an LBA to its current physical page. The second
// result reports whether the LBA is mapped.
func (f *FTL) Lookup(l LBA) (nand.PPA, bool) {
	if f.checkLBA(l) != nil {
		return 0, false
	}
	p := f.l2p[l]
	return p, p != invalid
}

// Read returns the current contents of LBA l. The slice aliases the
// NAND array's storage; callers must not modify it.
func (f *FTL) Read(l LBA) ([]byte, error) {
	if err := f.checkLBA(l); err != nil {
		return nil, err
	}
	p := f.l2p[l]
	if p == invalid {
		return nil, fmt.Errorf("%w: %d", ErrUnmapped, l)
	}
	f.hostReads++
	return f.readPhysical(p)
}

// readPhysical reads one NAND page through the read-retry ladder:
// transient errors are retried up to MaxReadRetries times before the
// page is declared uncorrectable. Genuinely uncorrectable errors fail
// immediately (the injector makes them sticky, so retrying is futile).
func (f *FTL) readPhysical(p nand.PPA) ([]byte, error) {
	data, err := f.array.Read(p)
	if err == nil || !errors.Is(err, nand.ErrReadFault) {
		if err != nil && errors.Is(err, nand.ErrUncorrectable) {
			f.uncorrectableReads++
		}
		return data, err
	}
	for attempt := 1; attempt <= f.cfg.MaxReadRetries; attempt++ {
		f.readRetries++
		data, err = f.array.Read(p)
		if err == nil {
			f.recoveredReads++
			return data, nil
		}
		if errors.Is(err, nand.ErrUncorrectable) {
			f.uncorrectableReads++
			return nil, err
		}
		if !errors.Is(err, nand.ErrReadFault) {
			return nil, err
		}
	}
	// The retry ladder is exhausted: report the page as lost.
	f.uncorrectableReads++
	return nil, fmt.Errorf("ftl: %d read retries exhausted at ppa %d: %w",
		f.cfg.MaxReadRetries, p, nand.ErrUncorrectable)
}

// Write stores one page of data at LBA l, allocating a fresh physical
// page (striped across channels) and invalidating any prior mapping.
func (f *FTL) Write(l LBA, data []byte) error {
	if err := f.checkLBA(l); err != nil {
		return err
	}
	f.privatize()
	ppa, err := f.programRetry(f.allocate, data)
	if err != nil {
		return fmt.Errorf("ftl: program lba %d: %w", l, err)
	}
	f.invalidate(l)
	f.l2p[l] = ppa
	f.p2l[ppa] = l
	f.validCount[f.geo.BlockOf(ppa)]++
	f.hostWrites++
	return nil
}

// Trim discards the mapping for LBA l, marking its physical page stale.
func (f *FTL) Trim(l LBA) error {
	if err := f.checkLBA(l); err != nil {
		return err
	}
	f.privatize()
	f.invalidate(l)
	return nil
}

func (f *FTL) invalidate(l LBA) {
	old := f.l2p[l]
	if old == invalid {
		return
	}
	f.validCount[f.geo.BlockOf(old)]--
	f.p2l[old] = invalid
	f.l2p[l] = invalid
}

// programRetry programs data onto a freshly allocated page, remapping
// to the next page slot when a program fails. Each failure abandons
// the consumed slot (it stays unmapped and is reclaimed at erase) and
// allocation moves on; after MaxProgramRetries failures the write
// surfaces the NAND error.
func (f *FTL) programRetry(alloc func() (nand.PPA, error), data []byte) (nand.PPA, error) {
	var lastErr error
	for attempt := 0; attempt <= f.cfg.MaxProgramRetries; attempt++ {
		ppa, err := alloc()
		if err != nil {
			return 0, err
		}
		err = f.array.Program(ppa, data)
		if err == nil {
			return ppa, nil
		}
		if !errors.Is(err, nand.ErrProgramFail) {
			return 0, err
		}
		f.remappedPrograms++
		lastErr = err
	}
	return 0, fmt.Errorf("ftl: %d program remaps exhausted: %w", f.cfg.MaxProgramRetries, lastErr)
}

// allocate returns the next physical page on the round-robin channel
// frontier, running GC and rotating active blocks as needed.
func (f *FTL) allocate() (nand.PPA, error) {
	ch := f.nextChan
	f.nextChan = (f.nextChan + 1) % f.geo.Channels
	return f.allocateOn(ch)
}

func (f *FTL) allocateOn(ch int) (nand.PPA, error) {
	// Loop: GC relocation below can consume the entire fresh frontier,
	// in which case another block must be opened before the host write
	// can proceed.
	for f.frontier[ch] >= f.geo.PagesPerBlock {
		// Active block full: open a fresh one, then top up the free
		// list. GC runs while the frontier is fresh so relocation always
		// has space; the collecting guard keeps relocation's own
		// allocations from triggering nested collections.
		blk, err := f.takeFree(ch)
		if err != nil {
			// Free list empty. Stale pages may still exist but be
			// trapped in full blocks (including the active one) while
			// every other block is fully valid; reclaim one block in
			// place via a RAM staging buffer. Inside a collection this
			// would erase pages the collector is still reading, so
			// surface the error there instead.
			if f.collecting {
				return 0, err
			}
			if cerr := f.compactInPlace(ch); cerr != nil {
				return 0, cerr
			}
			continue
		}
		f.active[ch] = blk
		f.frontier[ch] = 0
		for !f.collecting && len(f.freeBlocks[ch]) < f.cfg.GCLowWater {
			before := len(f.freeBlocks[ch])
			gained, err := f.collectChannel(ch)
			// Stop on error, on a fully-valid victim (no stale space),
			// or when a collection made no net free-list progress —
			// high-valid victims can consume a block for relocation and
			// return only the erased victim, a net-zero cycle that must
			// not be allowed to spin. The host keeps writing into the
			// frontier either way; a genuinely full device surfaces as
			// ErrDeviceFull on a later takeFree.
			if err != nil || !gained || len(f.freeBlocks[ch]) <= before {
				break
			}
		}
	}
	p := f.geo.FirstPage(f.active[ch]) + nand.PPA(f.frontier[ch])
	f.frontier[ch]++
	return p, nil
}

// collectChannel reclaims the lowest-valid-count non-active block on
// channel ch: relocates its valid pages onto the channel's write
// frontier, erases it, and returns it to the free list. The gained
// result reports whether the victim had any stale pages — a fully valid
// victim reclaims no space, and callers must stop collecting.
func (f *FTL) collectChannel(ch int) (gained bool, err error) {
	f.collecting = true
	defer func() { f.collecting = false }()
	victim, valid, ok := f.pickVictim(ch)
	if !ok {
		return false, fmt.Errorf("%w: channel %d has no gc victim", ErrDeviceFull, ch)
	}
	if valid >= f.geo.PagesPerBlock {
		// Even the best victim is fully valid: relocating it would fill
		// exactly as much frontier as erasing it frees, a zero-gain
		// shuffle (and, repeated, a livelock). Decline to collect.
		return false, nil
	}
	gained = true
	first := f.geo.FirstPage(victim)
	for i := 0; i < f.geo.PagesPerBlock; i++ {
		src := first + nand.PPA(i)
		l := f.p2l[src]
		if l == invalid {
			continue
		}
		data, err := f.readPhysical(src)
		if err != nil {
			return gained, fmt.Errorf("ftl: gc read: %w", err)
		}
		dst, err := f.programRetry(func() (nand.PPA, error) { return f.allocateOn(ch) }, data)
		if err != nil {
			return gained, fmt.Errorf("ftl: gc relocate: %w", err)
		}
		f.validCount[f.geo.BlockOf(src)]--
		f.p2l[src] = invalid
		f.l2p[l] = dst
		f.p2l[dst] = l
		f.validCount[f.geo.BlockOf(dst)]++
		f.gcWrites++
	}
	if err := f.array.Erase(victim); err != nil {
		if errors.Is(err, nand.ErrEraseFail) {
			// Grown bad block: its valid data is already relocated, so
			// retire it instead of returning it to the free list. The
			// capacity loss comes out of over-provisioning.
			f.badBlocks[victim] = true
			return gained, nil
		}
		return gained, fmt.Errorf("ftl: gc erase: %w", err)
	}
	f.freeBlocks[ch] = append(f.freeBlocks[ch], victim)
	f.gcRuns++
	return gained, nil
}

// pickVictim chooses the non-active, non-free block on ch with the
// fewest valid pages (greedy policy), reporting that count.
func (f *FTL) pickVictim(ch int) (nand.BlockID, int, bool) {
	return f.pickVictimWhere(ch, func(b nand.BlockID) bool { return b != f.active[ch] })
}

func (f *FTL) pickVictimWhere(ch int, eligible func(nand.BlockID) bool) (nand.BlockID, int, bool) {
	best := nand.BlockID(-1)
	bestValid := f.geo.PagesPerBlock + 1
	for b := nand.BlockID(0); int64(b) < f.geo.TotalBlocks(); b++ {
		if f.geo.ChannelOf(b) != ch || !eligible(b) {
			continue
		}
		if f.blockFree(b) || f.badBlocks[b] {
			continue
		}
		if v := f.validCount[b]; v < bestValid {
			best, bestValid = b, v
		}
	}
	return best, bestValid, best >= 0
}

// compactInPlace reclaims one block on ch without consuming a free
// block: the valid pages of the lowest-valid block (the active block
// included) are staged in controller RAM, the block is erased, and the
// pages are programmed back at its start. The compacted block becomes
// the channel's active block with its frontier after the survivors.
// It fails with ErrDeviceFull only when every block on ch is fully
// valid, i.e. the device genuinely has no reclaimable space.
func (f *FTL) compactInPlace(ch int) error {
	victim, valid, ok := f.pickVictimWhere(ch, func(nand.BlockID) bool { return true })
	if !ok || valid >= f.geo.PagesPerBlock {
		return fmt.Errorf("%w: channel %d has no stale pages to compact", ErrDeviceFull, ch)
	}
	type saved struct {
		l    LBA
		src  nand.PPA
		data []byte
	}
	first := f.geo.FirstPage(victim)
	keep := make([]saved, 0, valid)
	for i := 0; i < f.geo.PagesPerBlock; i++ {
		src := first + nand.PPA(i)
		l := f.p2l[src]
		if l == invalid {
			continue
		}
		data, err := f.readPhysical(src)
		if err != nil {
			return fmt.Errorf("ftl: compact read: %w", err)
		}
		// Copy: erase below releases the array's page buffers.
		keep = append(keep, saved{l, src, append([]byte(nil), data...)})
		f.validCount[victim]--
		f.p2l[src] = invalid
		f.l2p[l] = invalid
	}
	if err := f.array.Erase(victim); err != nil {
		if errors.Is(err, nand.ErrEraseFail) {
			// The erase failed with the contents intact: restore the
			// mappings, retire the block as grown-bad, and compact a
			// different victim instead.
			for _, s := range keep {
				f.l2p[s.l] = s.src
				f.p2l[s.src] = s.l
				f.validCount[victim]++
			}
			f.badBlocks[victim] = true
			return f.compactInPlace(ch)
		}
		return fmt.Errorf("ftl: compact erase: %w", err)
	}
	slot := 0
	for _, s := range keep {
		var dst nand.PPA
		for {
			if slot >= f.geo.PagesPerBlock {
				return fmt.Errorf("ftl: compact block %d ran out of slots remapping failed programs: %w",
					victim, nand.ErrProgramFail)
			}
			dst = first + nand.PPA(slot)
			slot++
			err := f.array.Program(dst, s.data)
			if err == nil {
				break
			}
			if !errors.Is(err, nand.ErrProgramFail) {
				return fmt.Errorf("ftl: compact program: %w", err)
			}
			f.remappedPrograms++
		}
		f.l2p[s.l] = dst
		f.p2l[dst] = s.l
		f.validCount[victim]++
		f.gcWrites++
	}
	f.active[ch] = victim
	f.frontier[ch] = slot
	f.gcRuns++
	return nil
}

func (f *FTL) blockFree(b nand.BlockID) bool {
	for _, fb := range f.freeBlocks[f.geo.ChannelOf(b)] {
		if fb == b {
			return true
		}
	}
	return false
}

// Stats summarizes FTL activity.
type Stats struct {
	HostReads  int64 // pages read on behalf of the host
	HostWrites int64 // pages written by the host
	GCWrites   int64 // pages relocated by garbage collection
	GCRuns     int64 // victim blocks reclaimed
	// WriteAmplification is (host+gc)/host page programs; 1.0 when no GC
	// has run, and 0 when nothing has been written.
	WriteAmplification float64

	// Reliability counters (all zero unless fault injection is on).
	ReadRetries        int64 // NAND re-reads after transient errors
	RecoveredReads     int64 // reads recovered by the retry ladder
	UncorrectableReads int64 // reads lost beyond ECC and retries
	RemappedPrograms   int64 // page slots abandoned to program failures
	GrownBadBlocks     int64 // blocks retired after erase failures
}

// Stats reports cumulative FTL activity.
func (f *FTL) Stats() Stats {
	s := Stats{
		HostReads:          f.hostReads,
		HostWrites:         f.hostWrites,
		GCWrites:           f.gcWrites,
		GCRuns:             f.gcRuns,
		ReadRetries:        f.readRetries,
		RecoveredReads:     f.recoveredReads,
		UncorrectableReads: f.uncorrectableReads,
		RemappedPrograms:   f.remappedPrograms,
		GrownBadBlocks:     int64(len(f.badBlocks)),
	}
	if f.hostWrites > 0 {
		s.WriteAmplification = float64(f.hostWrites+f.gcWrites) / float64(f.hostWrites)
	}
	return s
}
