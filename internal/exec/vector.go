package exec

import (
	"time"

	"smartssd/internal/expr"
	"smartssd/internal/page"
	"smartssd/internal/schema"
)

// Vectorized execution: recognized plan shapes run page-at-a-time over
// columnar batches and selection vectors instead of tuple-at-a-time
// through interface dispatch. The invariant that makes this safe to
// enable by default is closed-form charge equivalence: every CPU
// reservation the scalar path makes is reproduced with the same cycles,
// the same ready time, and in the same order — identical per-tuple
// charges collapse into counted runs through chargeBatchedN/chargeRun,
// which the rate server schedules exactly like the equivalent Serve
// sequence — so results, Stats, and virtual timings are byte-identical
// while wall-clock time and allocations drop.
//
// Recognized shapes (exactly the planner's host plans):
//
//	{Aggregate | Project} over TableScan                  — fully vectorized
//	{Aggregate | Project} over HashJoin(probe: TableScan) — vectorized
//	    probe scan (page charge, filter kernel, bulk key read, counted
//	    miss charges); hit/emit chains and the root stay scalar because
//	    their chained per-row completion times are observable.
//
// Anything else — standalone Filter (whose per-tuple completion times
// feed downstream ready times), non-scan inputs, expressions the batch
// compiler rejects — falls back to the scalar operators untouched.

// vecPlan is a recognized vectorizable plan shape.
type vecPlan struct {
	agg  *Aggregate
	proj *Project
	join *HashJoin  // nil for scan-only shapes
	scan *TableScan // the (probe) scan feeding the tree
}

func matchVecPlan(op Operator) (vecPlan, bool) {
	var p vecPlan
	var input Operator
	switch root := op.(type) {
	case *Aggregate:
		p.agg, input = root, root.Input
	case *Project:
		p.proj, input = root, root.Input
	default:
		return p, false
	}
	switch in := input.(type) {
	case *TableScan:
		p.scan = in
	case *HashJoin:
		ps, ok := in.Probe.(*TableScan)
		if !ok {
			return p, false
		}
		p.join, p.scan = in, ps
	default:
		return p, false
	}
	return p, true
}

// runVectorized runs op through the vectorized executor when the plan
// shape and its expressions are supported, reporting false (with no
// charges booked) otherwise. Only Collect dispatches here, and Collect's
// sink ignores per-tuple emit times; paths that cannot cheaply
// reproduce scalar per-row completion times (Project output rows) emit
// with their batch's last completion instead.
func runVectorized(ctx *Ctx, op Operator, emit Emit) (time.Duration, error, bool) {
	if ctx.ScalarExec {
		return 0, nil, false
	}
	p, ok := matchVecPlan(op)
	if !ok {
		return 0, nil, false
	}
	if p.join != nil {
		vj, ok := newVecJoin(ctx, p.join, p.scan)
		if !ok {
			return 0, nil, false
		}
		// The root runs scalar over the wrapped join: its charges are
		// driven by emitted tuple times, which the wrapper reproduces
		// exactly. A shallow copy redirects Input without mutating the
		// caller's plan.
		var end time.Duration
		var err error
		if p.agg != nil {
			agg := *p.agg
			agg.Input = vj
			end, err = agg.Run(ctx, emit)
		} else {
			proj := *p.proj
			proj.Input = vj
			end, err = proj.Run(ctx, emit)
		}
		return end, err, true
	}
	if p.agg != nil {
		return runVecAggScan(ctx, p.agg, p.scan, emit)
	}
	return runVecProjScan(ctx, p.proj, p.scan, emit)
}

// compileBatch compiles e for vectorized evaluation through the
// engine's kernel cache: a reused engine probes by canonical key and
// compiles each distinct expression once across runs.
func (c *Ctx) compileBatch(e expr.Expr) (*expr.BatchExpr, bool) {
	if c.Scratch == nil {
		return expr.CompileBatch(e)
	}
	key, ok := expr.BatchKey(e)
	if !ok {
		return nil, false
	}
	if be := c.Scratch.kernels[key]; be != nil {
		return be, true
	}
	be, ok := expr.CompileBatch(e)
	if !ok {
		return nil, false
	}
	if c.Scratch.kernels == nil {
		c.Scratch.kernels = make(map[string]*expr.BatchExpr)
	}
	c.Scratch.kernels[key] = be
	return be, true
}

// vecScan decodes the referenced columns of a TableScan's pages into a
// columnar Batch and applies the scan's filter as a selection-vector
// kernel. Column vectors are carved once per run at page capacity and
// refilled in place page after page.
type vecScan struct {
	scan      *TableScan
	filter    *expr.BatchExpr // nil when the scan has no filter
	filterOps int64           // scan.Filter.Ops(), for the page charge
	batch     *schema.Batch
	ident     []int32 // identity selection buffer, refilled per page
	intCols   []int
	intVecs   [][]int64
	charCols  []int
	charVecs  [][][]byte
}

// newVecScan builds the decode plan for scan: needCols (the columns the
// consumer reads) plus the filter's columns, deduplicated, each backed
// by an arena-carved vector. It reports false when the filter is
// outside the batch compiler's expression class.
func newVecScan(ctx *Ctx, scan *TableScan, needCols []int) (*vecScan, bool) {
	s := scan.File.Schema()
	v := &vecScan{scan: scan}
	cols := append([]int(nil), needCols...)
	if scan.Filter != nil {
		k, ok := ctx.compileBatch(scan.Filter)
		if !ok {
			return nil, false
		}
		v.filter = k
		v.filterOps = int64(scan.Filter.Ops())
		cols = expr.AppendDistinctColumns(cols, scan.Filter)
	}
	// Global dedupe: AppendDistinctColumns only dedupes within one call.
	seen := 0
	for _, c := range cols {
		dup := false
		for i := 0; i < seen; i++ {
			if cols[i] == c {
				dup = true
				break
			}
		}
		if !dup {
			cols[seen] = c
			seen++
		}
	}
	cols = cols[:seen]

	arena := &schema.TupleArena{}
	if ctx.Scratch != nil {
		arena = &ctx.Scratch.vec
	}
	capacity := page.Capacity(s, scan.File.Layout())
	v.batch = schema.NewBatch(s.NumColumns())
	v.ident = arena.Sel(capacity)
	for _, c := range cols {
		if s.Column(c).Kind == schema.Char {
			vec := arena.ByteVecs(capacity)
			v.batch.SetBytesVec(c, vec)
			v.charCols = append(v.charCols, c)
			v.charVecs = append(v.charVecs, vec)
		} else {
			vec := arena.Ints(capacity)
			v.batch.SetInt64Vec(c, vec)
			v.intCols = append(v.intCols, c)
			v.intVecs = append(v.intVecs, vec)
		}
	}
	return v, true
}

// pageCycles reports the scalar scan's per-page CPU charge for a page
// of n tuples: page setup, per-tuple iteration, and per-tuple filter
// evaluation at the expression's static operator count.
func (v *vecScan) pageCycles(cost CostModel, n int) int64 {
	cycles := cost.PageCycles + int64(n)*cost.TupleCycles
	if v.filter != nil {
		cycles += int64(n) * v.filterOps * cost.OpCycles
	}
	return cycles
}

// bind decodes the planned columns of the bound page into the batch's
// vectors, in place.
func (v *vecScan) bind(r *page.Reader) {
	v.batch.SetLen(r.Count())
	for k, c := range v.intCols {
		r.Int64ColumnInto(c, v.intVecs[k])
	}
	for k, c := range v.charCols {
		r.BytesColumnInto(c, v.charVecs[k])
	}
}

// selectRows builds the page's selection: every row, refined by the
// filter kernel when one is attached. The result is valid until the
// next call.
func (v *vecScan) selectRows() []int32 {
	sel := v.ident[:v.batch.Len()]
	for i := range sel {
		sel[i] = int32(i)
	}
	if v.filter != nil {
		sel = v.filter.Select(v.batch, sel)
	}
	return sel
}

// selChunk reports the next selection chunk boundary under the
// BatchRows knob; zero means whole-page chunks. Splitting a selection
// never changes charges: counted runs are additive on the rate server.
func selChunk(ctx *Ctx, off, n int) int {
	if ctx.BatchRows <= 0 || off+ctx.BatchRows > n {
		return n
	}
	return off + ctx.BatchRows
}

// runVecAggScan runs Aggregate-over-TableScan vectorized: one page
// charge, one filter kernel pass, one counted fold charge per selection
// chunk, and scalar-identical group-state management in scan order.
func runVecAggScan(ctx *Ctx, a *Aggregate, scan *TableScan, emit Emit) (time.Duration, error, bool) {
	cost := ctx.Host.Cost
	aggK := make([]*expr.BatchExpr, len(a.Aggs))
	var ops int64
	needCols := append([]int(nil), a.GroupBy...)
	for i, s := range a.Aggs {
		if s.E == nil {
			continue
		}
		ops += int64(s.E.Ops())
		k, ok := ctx.compileBatch(s.E)
		if !ok {
			return 0, nil, false
		}
		aggK[i] = k
		needCols = expr.AppendDistinctColumns(needCols, s.E)
	}
	vs, ok := newVecScan(ctx, scan, needCols)
	if !ok {
		return 0, nil, false
	}
	perTuple := ops*cost.OpCycles + int64(len(a.Aggs))*cost.AggCycles

	groups := make(map[string]*aggState)
	var order []string
	keyBuf := make([]byte, 0, 64)
	var local schema.TupleArena
	arena := &local
	if ctx.Scratch != nil {
		arena = &ctx.Scratch.group
	}
	var states []aggState
	newState := func() *aggState {
		if len(states) == cap(states) {
			states = make([]aggState, 0, max(64, 2*cap(states)))
		}
		states = append(states, aggState{
			vals: arena.Ints(len(a.Aggs)),
			seen: arena.Bools(len(a.Aggs)),
		})
		return &states[len(states)-1]
	}

	in := scan.File.Schema()
	vals := make([][]int64, len(a.Aggs))
	var end time.Duration
	process := func(r *page.Reader, arrival time.Duration) error {
		n := r.Count()
		done := ctx.charge(vs.pageCycles(cost, n), arrival)
		if done > end {
			end = done
		}
		ctx.Stats.PagesRead++
		ctx.Stats.RowsScanned += int64(n)
		vs.bind(r)
		sel := vs.selectRows()
		ctx.Stats.RowsEmitted += int64(len(sel))
		for off := 0; off < len(sel); {
			lim := selChunk(ctx, off, len(sel))
			part := sel[off:lim]
			off = lim
			ctx.chargeBatchedN(perTuple, done, len(part))
			for i, k := range aggK {
				if k != nil {
					vals[i] = k.EvalInt64(vs.batch, part, vals[i])
				}
			}
			for pi, row := range part {
				keyBuf = keyBuf[:0]
				for _, g := range a.GroupBy {
					keyBuf = in.EncodeValue(keyBuf, g, vs.batch.Value(g, int(row)))
				}
				st, ok := groups[string(keyBuf)]
				if !ok {
					st = newState()
					if len(a.GroupBy) > 0 {
						st.group = arena.Tuple(len(a.GroupBy))
						for gi, g := range a.GroupBy {
							gv := vs.batch.Value(g, int(row))
							if gv.Bytes != nil {
								gv.Bytes = arena.CloneBytes(gv.Bytes)
							}
							st.group[gi] = gv
						}
					}
					groups[string(keyBuf)] = st
					order = append(order, string(keyBuf))
				}
				for i, s := range a.Aggs {
					switch s.Kind {
					case Count:
						st.vals[i]++
					case Sum:
						st.vals[i] += vals[i][pi]
					case Min:
						if v := vals[i][pi]; !st.seen[i] || v < st.vals[i] {
							st.vals[i] = v
						}
					case Max:
						if v := vals[i][pi]; !st.seen[i] || v > st.vals[i] {
							st.vals[i] = v
						}
					}
					st.seen[i] = true
				}
			}
		}
		return nil
	}
	ioEnd, err := scan.drivePages(ctx, process)
	if m := ctx.takeRunMax(); m > end {
		end = m
	}
	if err != nil {
		return end, err, true
	}
	if ioEnd > end {
		end = ioEnd
	}

	if len(a.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = newState()
		order = append(order, "")
	}
	out := make(schema.Tuple, len(a.GroupBy)+len(a.Aggs))
	for _, key := range order {
		st := groups[key]
		done := ctx.charge(cost.EmitCycles, end)
		copy(out, st.group)
		for i, v := range st.vals {
			out[len(a.GroupBy)+i] = schema.IntVal(v)
		}
		ctx.Stats.RowsEmitted++
		if err := emit(out, done); err != nil {
			return end, err, true
		}
		if done > end {
			end = done
		}
	}
	return end, nil, true
}

// runVecProjScan runs Project-over-TableScan vectorized: one page
// charge, one filter kernel pass, one counted per-row output charge per
// selection chunk (bypassing the batched-run accumulator, exactly like
// the scalar Project's direct charges), and kernel-evaluated output
// columns assembled into tuples in scan order.
func runVecProjScan(ctx *Ctx, p *Project, scan *TableScan, emit Emit) (time.Duration, error, bool) {
	cost := ctx.Host.Cost
	outK := make([]*expr.BatchExpr, len(p.Cols))
	var ops int64
	var needCols []int
	for i, c := range p.Cols {
		ops += int64(c.E.Ops())
		k, ok := ctx.compileBatch(c.E)
		if !ok {
			return 0, nil, false
		}
		outK[i] = k
		needCols = expr.AppendDistinctColumns(needCols, c.E)
	}
	vs, ok := newVecScan(ctx, scan, needCols)
	if !ok {
		return 0, nil, false
	}
	perRow := ops*cost.OpCycles + cost.EmitCycles

	intOut := make([][]int64, len(p.Cols))
	bytOut := make([][][]byte, len(p.Cols))
	out := make(schema.Tuple, len(p.Cols))
	var end time.Duration
	process := func(r *page.Reader, arrival time.Duration) error {
		n := r.Count()
		done := ctx.charge(vs.pageCycles(cost, n), arrival)
		if done > end {
			end = done
		}
		ctx.Stats.PagesRead++
		ctx.Stats.RowsScanned += int64(n)
		vs.bind(r)
		sel := vs.selectRows()
		ctx.Stats.RowsEmitted += int64(len(sel))
		for off := 0; off < len(sel); {
			lim := selChunk(ctx, off, len(sel))
			part := sel[off:lim]
			off = lim
			// Scalar Project charges each output row directly at the
			// page's done time; the counted run books the same
			// reservations. Per-row completion times are unobservable
			// through Collect, so emitted rows carry the run's last.
			last := ctx.chargeRun(perRow, done, len(part))
			for i, k := range outK {
				if k.Kind() == schema.Char {
					bytOut[i] = k.EvalBytes(vs.batch, part, bytOut[i])
				} else {
					intOut[i] = k.EvalInt64(vs.batch, part, intOut[i])
				}
			}
			for pi := range part {
				for i, k := range outK {
					if k.Kind() == schema.Char {
						out[i] = schema.Value{Bytes: bytOut[i][pi]}
					} else {
						out[i] = schema.Value{Int: intOut[i][pi]}
					}
				}
				if err := emit(out, last); err != nil {
					return err
				}
			}
		}
		return nil
	}
	ioEnd, err := scan.drivePages(ctx, process)
	if err != nil {
		return end, err, true
	}
	if ioEnd > end {
		end = ioEnd
	}
	return end, nil, true
}

// vecJoin wraps a HashJoin whose probe side is a TableScan: the build
// phase and hit/emit chains run the scalar code (chained completion
// times are observable downstream), while the probe scan's page
// charges, filter evaluation, key extraction, and miss charges are
// vectorized. It implements Operator so the scalar root runs over it
// unchanged.
type vecJoin struct {
	join   *HashJoin
	scan   *TableScan
	vs     *vecScan
	keyCol int
}

func newVecJoin(ctx *Ctx, j *HashJoin, probe *TableScan) (*vecJoin, bool) {
	if probe.File.Schema().Column(j.ProbeKey).Kind == schema.Char {
		// Scalar probing keys on Value.Int; a CHAR key never matches
		// meaningfully and has no numeric vector — leave it scalar.
		return nil, false
	}
	vs, ok := newVecScan(ctx, probe, []int{j.ProbeKey})
	if !ok {
		return nil, false
	}
	return &vecJoin{join: j, scan: probe, vs: vs, keyCol: j.ProbeKey}, true
}

// Schema implements Operator.
func (v *vecJoin) Schema() *schema.Schema { return v.join.Schema() }

// Children implements Operator.
func (v *vecJoin) Children() []Operator { return v.join.Children() }

// Explain implements Operator.
func (v *vecJoin) Explain() string { return v.join.Explain() }

// Run implements Operator.
func (v *vecJoin) Run(ctx *Ctx, emit Emit) (time.Duration, error) {
	j := v.join
	cost := ctx.Host.Cost
	ht, buildDone, err := j.runBuild(ctx)
	if err != nil {
		return buildDone, err
	}

	nb := j.Build.Schema().NumColumns()
	np := j.Probe.Schema().NumColumns()
	out := make(schema.Tuple, np+nb)
	var probeT schema.Tuple
	var end time.Duration     // max hit-chain completion
	var scanEnd time.Duration // the probe scan's own end
	process := func(r *page.Reader, arrival time.Duration) error {
		n := r.Count()
		done := ctx.charge(v.vs.pageCycles(cost, n), arrival)
		if done > scanEnd {
			scanEnd = done
		}
		ctx.Stats.PagesRead++
		ctx.Stats.RowsScanned += int64(n)
		v.vs.bind(r)
		sel := v.vs.selectRows()
		ctx.Stats.RowsEmitted += int64(len(sel))
		ready := done
		if buildDone > ready {
			ready = buildDone
		}
		keys := v.vs.batch.Int64Vec(v.keyCol)
		// Misses accumulate as a counted run booked just before the next
		// hit's direct charge (or page end) — the same pending-run state
		// and flush points the scalar path's per-miss chargeBatched calls
		// produce, since nothing else touches the accumulator in between.
		misses := 0
		for _, row := range sel {
			ctx.Stats.HashProbes++
			matches := ht[keys[row]]
			if len(matches) == 0 {
				misses++
				continue
			}
			ctx.chargeBatchedN(cost.HashProbeCycles, ready, misses)
			misses = 0
			hdone := ctx.charge(cost.HashProbeCycles, ready)
			probeT = r.Tuple(probeT, int(row))
			for _, b := range matches {
				hdone = ctx.charge(cost.EmitCycles, hdone)
				copy(out, probeT)
				copy(out[np:], b)
				ctx.Stats.RowsEmitted++
				if err := emit(out, hdone); err != nil {
					return err
				}
			}
			if hdone > end {
				end = hdone
			}
		}
		ctx.chargeBatchedN(cost.HashProbeCycles, ready, misses)
		return nil
	}
	ioEnd, err := v.scan.drivePages(ctx, process)
	if m := ctx.takeRunMax(); m > end {
		end = m
	}
	if err != nil {
		return end, err
	}
	if ioEnd > scanEnd {
		scanEnd = ioEnd
	}
	if scanEnd > end {
		end = scanEnd
	}
	if buildDone > end {
		end = buildDone
	}
	return end, nil
}
