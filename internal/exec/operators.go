package exec

import (
	"fmt"
	"time"

	"smartssd/internal/bufpool"
	"smartssd/internal/expr"
	"smartssd/internal/heap"
	"smartssd/internal/page"
	"smartssd/internal/plan"
	"smartssd/internal/schema"
)

// readerRow adapts one tuple inside a bound page to expr.Row, so
// predicates evaluate without materializing the tuple. It is passed by
// pointer so the expr.Row conversion never heap-allocates per tuple.
type readerRow struct {
	r *page.Reader
	i int
}

func (rr *readerRow) Col(c int) schema.Value { return rr.r.Column(rr.i, c) }

// TableScan reads a heap file sequentially through the host I/O path,
// optionally applying a predicate as pages arrive (SQL Server's scan +
// residual predicate). When Pool is set, cached pages are served from
// the buffer pool without device I/O, and pages read from the device are
// inserted into the pool — the host-side advantage the paper's §4.3
// weighs against pushdown.
type TableScan struct {
	File   *heap.File
	Filter expr.Expr     // optional
	Pool   *bufpool.Pool // optional
	// From and Count restrict the scan to a page subrange; a zero Count
	// scans from From to the end of the file. Partial scans are how
	// hybrid execution splits a table between host and device.
	From  int64
	Count int64
}

// scanRange reports the page range [from, from+n) this scan covers.
func (t *TableScan) scanRange() (int64, int64) {
	from := t.From
	n := t.Count
	if n <= 0 {
		n = t.File.Pages() - from
	}
	if n < 0 {
		n = 0
	}
	return from, n
}

// Schema implements Operator.
func (t *TableScan) Schema() *schema.Schema { return t.File.Schema() }

// Children implements Operator.
func (t *TableScan) Children() []Operator { return nil }

// Explain implements Operator.
func (t *TableScan) Explain() string {
	from, n := t.scanRange()
	s := fmt.Sprintf("TableScan(%s, %v, pages %d-%d)", t.File.Name(), t.File.Layout(), from, from+n)
	if t.Filter != nil {
		s += " filter " + t.Filter.String()
	}
	return s
}

// Run implements Operator.
func (t *TableScan) Run(ctx *Ctx, emit Emit) (time.Duration, error) {
	var end time.Duration
	var out schema.Tuple
	cost := ctx.Host.Cost

	rr := &readerRow{}
	process := func(r *page.Reader, arrival time.Duration) error {
		n := int64(r.Count())
		cycles := cost.PageCycles + n*cost.TupleCycles
		if t.Filter != nil {
			cycles += n * int64(t.Filter.Ops()) * cost.OpCycles
		}
		done := ctx.charge(cycles, arrival)
		if done > end {
			end = done
		}
		ctx.Stats.PagesRead++
		ctx.Stats.RowsScanned += n
		rr.r = r
		for i := 0; i < r.Count(); i++ {
			rr.i = i
			if t.Filter != nil && t.Filter.Eval(rr).Int == 0 {
				continue
			}
			out = r.Tuple(out, i)
			ctx.Stats.RowsEmitted++
			if err := emit(out, done); err != nil {
				return err
			}
		}
		return nil
	}

	ioEnd, err := t.drivePages(ctx, process)
	if err != nil {
		return end, err
	}
	if ioEnd > end {
		end = ioEnd
	}
	return end, nil
}

// drivePages iterates the scan's pages in order — through the buffer
// pool when one is attached, direct sequential range reads otherwise —
// invoking process for each bound page with its arrival time. It
// returns the I/O-side completion time (the last page arrival, raised
// to the host CPU horizon on the pool path); charge-side completion
// times are tracked by the process callback. Both the scalar and
// vectorized scan paths share this driver, so caching and I/O timing
// behave identically.
func (t *TableScan) drivePages(ctx *Ctx, process func(*page.Reader, time.Duration) error) (time.Duration, error) {
	if t.Pool == nil {
		from, n := t.scanRange()
		return t.File.ScanRange(from, n, 0, process)
	}
	return t.runWithPool(ctx, process)
}

// runWithPool scans page by page, serving buffer-pool hits without
// device I/O and reading uncached runs with sequential range reads.
func (t *TableScan) runWithPool(ctx *Ctx, process func(*page.Reader, time.Duration) error) (time.Duration, error) {
	var end time.Duration
	from, n := t.scanRange()
	pages := from + n
	r := page.ReaderFor(t.File.Schema())
	for idx := from; idx < pages; {
		lba := t.File.StartLBA() + idx
		if data, hit := t.Pool.Get(lba); hit {
			// Cached: page is host-resident already; only CPU time.
			if err := r.Bind(data); err != nil {
				t.Pool.Unpin(lba, false)
				return end, err
			}
			err := process(r, 0)
			if uerr := t.Pool.Unpin(lba, false); uerr != nil {
				return end, uerr
			}
			if err != nil {
				return end, err
			}
			if h := ctx.Host.CPU.Horizon(); h > end {
				end = h
			}
			idx++
			continue
		}
		// Find the uncached run starting here.
		runLen := int64(1)
		for idx+runLen < pages && !t.Pool.Contains(t.File.StartLBA()+idx+runLen) {
			runLen++
		}
		last, err := t.File.ScanRange(idx, runLen, 0, func(pr *page.Reader, at time.Duration) error {
			if err := process(pr, at); err != nil {
				return err
			}
			// Warm the pool; ignore ErrAllPinned-style failures: caching
			// is best-effort and must not fail the scan. The frame
			// borrows the device's immutable page buffer, so warming
			// allocates nothing per page.
			plba := t.File.StartLBA() + int64(pr.PageNo())
			if err := t.Pool.PutBorrowed(plba, pr.Data()); err == nil {
				t.Pool.Unpin(plba, false)
			}
			return nil
		})
		if err != nil {
			return end, err
		}
		if last > end {
			end = last
		}
		idx += runLen
	}
	if h := ctx.Host.CPU.Horizon(); h > end {
		end = h
	}
	return end, nil
}

// Filter drops input tuples failing a predicate.
type Filter struct {
	Input Operator
	Pred  expr.Expr
}

// Schema implements Operator.
func (f *Filter) Schema() *schema.Schema { return f.Input.Schema() }

// Children implements Operator.
func (f *Filter) Children() []Operator { return []Operator{f.Input} }

// Explain implements Operator.
func (f *Filter) Explain() string { return "Filter " + f.Pred.String() }

// Run implements Operator.
func (f *Filter) Run(ctx *Ctx, emit Emit) (time.Duration, error) {
	ops := int64(f.Pred.Ops())
	cost := ctx.Host.Cost
	var row expr.TupleRow // hoisted so Eval's Row conversion never allocates
	return f.Input.Run(ctx, func(t schema.Tuple, at time.Duration) error {
		done := ctx.charge(ops*cost.OpCycles, at)
		row = expr.TupleRow(t)
		if f.Pred.Eval(&row).Int == 0 {
			return nil
		}
		return emit(t, done)
	})
}

// OutputCol aliases the shared projected-column spec.
type OutputCol = plan.OutputCol

// Project computes derived output tuples.
type Project struct {
	Input Operator
	Cols  []OutputCol

	out *schema.Schema
}

// Schema implements Operator.
func (p *Project) Schema() *schema.Schema {
	if p.out == nil {
		cols := make([]schema.Column, len(p.Cols))
		for i, c := range p.Cols {
			k := c.E.Kind()
			w := 0
			if k == schema.Char {
				// Width of a projected CHAR is the width of the source
				// column; expression trees projecting CHAR are always
				// bare column references in the supported query class.
				if col, ok := c.E.(expr.Col); ok {
					w = p.Input.Schema().Column(col.Index).Len
				} else {
					w = 32
				}
			}
			cols[i] = schema.Column{Name: c.Name, Kind: k, Len: w}
		}
		p.out = schema.New(cols...)
	}
	return p.out
}

// Children implements Operator.
func (p *Project) Children() []Operator { return []Operator{p.Input} }

// Explain implements Operator.
func (p *Project) Explain() string {
	s := "Project("
	for i, c := range p.Cols {
		if i > 0 {
			s += ", "
		}
		s += c.Name + "=" + c.E.String()
	}
	return s + ")"
}

// Run implements Operator.
func (p *Project) Run(ctx *Ctx, emit Emit) (time.Duration, error) {
	var ops int64
	for _, c := range p.Cols {
		ops += int64(c.E.Ops())
	}
	cost := ctx.Host.Cost
	out := make(schema.Tuple, len(p.Cols))
	var row expr.TupleRow
	return p.Input.Run(ctx, func(t schema.Tuple, at time.Duration) error {
		done := ctx.charge(ops*cost.OpCycles+cost.EmitCycles, at)
		row = expr.TupleRow(t)
		for i, c := range p.Cols {
			out[i] = c.E.Eval(&row)
		}
		return emit(out, done)
	})
}

// HashJoin is the paper's "simple hash join": the build side is read
// fully into an in-memory hash table (it must fit — |R| is small), then
// the probe side streams. Output tuples are probe columns followed by
// build columns.
type HashJoin struct {
	Build    Operator
	Probe    Operator
	BuildKey int // column index in Build's schema
	ProbeKey int // column index in Probe's schema

	out *schema.Schema
}

// Schema implements Operator.
func (j *HashJoin) Schema() *schema.Schema {
	if j.out == nil {
		j.out = concatSchemas(j.Probe.Schema(), j.Build.Schema())
	}
	return j.out
}

// Children implements Operator.
func (j *HashJoin) Children() []Operator { return []Operator{j.Build, j.Probe} }

// Explain implements Operator.
func (j *HashJoin) Explain() string {
	return fmt.Sprintf("HashJoin(build.%s = probe.%s)",
		j.Build.Schema().Column(j.BuildKey).Name, j.Probe.Schema().Column(j.ProbeKey).Name)
}

// runBuild reads the build side fully into the in-memory hash table and
// returns it with the build phase's completion barrier. Shared by the
// scalar Run and the vectorized probe wrapper, so both phases charge
// identically.
func (j *HashJoin) runBuild(ctx *Ctx) (map[int64][]schema.Tuple, time.Duration, error) {
	cost := ctx.Host.Cost
	ht := make(map[int64][]schema.Tuple)
	// Build tuples are retained for the whole probe phase; an arena
	// batches their backing allocations instead of one per tuple. A
	// reused engine supplies a resettable scratch arena so steady-state
	// builds allocate nothing.
	var local schema.TupleArena
	arena := &local
	if ctx.Scratch != nil {
		arena = &ctx.Scratch.build
	}
	// An unfiltered full-table build side has a known cardinality:
	// reserve the value slots up front so the arena allocates one
	// right-sized slab instead of walking the doubling ladder.
	if ts, ok := j.Build.(*TableScan); ok && ts.Filter == nil && ts.From == 0 && ts.Count == 0 {
		arena.Reserve(int(ts.File.TupleCount())*ts.File.Schema().NumColumns(), 0)
	}
	// Build-side inserts are identical charges at page-granular ready
	// times; batch them and take the phase maximum at the barrier.
	_, err := j.Build.Run(ctx, func(t schema.Tuple, at time.Duration) error {
		ctx.chargeBatched(cost.HashBuildCycles, at)
		key := t[j.BuildKey].Int
		ht[key] = append(ht[key], arena.Clone(t))
		ctx.Stats.HashBuilds++
		return nil
	})
	return ht, ctx.takeRunMax(), err
}

// Run implements Operator.
func (j *HashJoin) Run(ctx *Ctx, emit Emit) (time.Duration, error) {
	cost := ctx.Host.Cost
	ht, buildDone, err := j.runBuild(ctx)
	if err != nil {
		return buildDone, err
	}

	nb := j.Build.Schema().NumColumns()
	np := j.Probe.Schema().NumColumns()
	out := make(schema.Tuple, np+nb)
	var end time.Duration
	last, err := j.Probe.Run(ctx, func(t schema.Tuple, at time.Duration) error {
		ready := at
		if buildDone > ready {
			ready = buildDone
		}
		ctx.Stats.HashProbes++
		matches := ht[t[j.ProbeKey].Int]
		if len(matches) == 0 {
			// Non-matching probes need no per-tuple completion time:
			// batch their identical charges and fold the phase maximum
			// into end below.
			ctx.chargeBatched(cost.HashProbeCycles, ready)
			return nil
		}
		done := ctx.charge(cost.HashProbeCycles, ready)
		for _, b := range matches {
			done = ctx.charge(cost.EmitCycles, done)
			copy(out, t)
			copy(out[np:], b)
			ctx.Stats.RowsEmitted++
			if err := emit(out, done); err != nil {
				return err
			}
		}
		if done > end {
			end = done
		}
		return nil
	})
	if m := ctx.takeRunMax(); m > end {
		end = m
	}
	if err != nil {
		return end, err
	}
	if last > end {
		end = last
	}
	if buildDone > end {
		end = buildDone
	}
	return end, nil
}

// AggKind and AggSpec alias the shared aggregate specs.
type (
	AggKind = plan.AggKind
	AggSpec = plan.AggSpec
)

// Aggregate functions, re-exported for plan construction convenience.
const (
	Sum   = plan.Sum
	Count = plan.Count
	Min   = plan.Min
	Max   = plan.Max
)

type aggState struct {
	group schema.Tuple
	vals  []int64
	seen  []bool
}

// Aggregate folds input tuples into per-group aggregates (a scalar
// aggregate when GroupBy is empty) and emits results after the input
// completes.
type Aggregate struct {
	Input   Operator
	GroupBy []int // column indexes in Input's schema
	Aggs    []AggSpec

	out *schema.Schema
}

// Schema implements Operator.
func (a *Aggregate) Schema() *schema.Schema {
	if a.out == nil {
		in := a.Input.Schema()
		cols := make([]schema.Column, 0, len(a.GroupBy)+len(a.Aggs))
		for _, g := range a.GroupBy {
			cols = append(cols, in.Column(g))
		}
		for _, s := range a.Aggs {
			cols = append(cols, schema.Column{Name: s.Name, Kind: schema.Int64})
		}
		a.out = schema.New(cols...)
	}
	return a.out
}

// Children implements Operator.
func (a *Aggregate) Children() []Operator { return []Operator{a.Input} }

// Explain implements Operator.
func (a *Aggregate) Explain() string {
	s := "Aggregate("
	for i, spec := range a.Aggs {
		if i > 0 {
			s += ", "
		}
		if spec.Kind == Count {
			s += "COUNT(*)"
		} else {
			s += fmt.Sprintf("%v(%s)", spec.Kind, spec.E)
		}
	}
	if len(a.GroupBy) > 0 {
		s += fmt.Sprintf(" groupby %v", a.GroupBy)
	}
	return s + ")"
}

// Run implements Operator.
func (a *Aggregate) Run(ctx *Ctx, emit Emit) (time.Duration, error) {
	cost := ctx.Host.Cost
	var ops int64
	for _, s := range a.Aggs {
		if s.E != nil {
			ops += int64(s.E.Ops())
		}
	}
	perTuple := ops*cost.OpCycles + int64(len(a.Aggs))*cost.AggCycles

	groups := make(map[string]*aggState)
	var order []string // first-seen group order, for deterministic output
	keyBuf := make([]byte, 0, 64)
	// Group tuples and accumulator slices live until the final emit
	// loop; carving them from an arena batches their allocations. A
	// reused engine supplies a resettable scratch arena so steady-state
	// aggregation allocates nothing.
	var local schema.TupleArena
	arena := &local
	if ctx.Scratch != nil {
		arena = &ctx.Scratch.group
	}
	var states []aggState // chunked so *aggState pointers stay stable
	newState := func() *aggState {
		if len(states) == cap(states) {
			states = make([]aggState, 0, max(64, 2*cap(states)))
		}
		states = append(states, aggState{
			vals: arena.Ints(len(a.Aggs)),
			seen: arena.Bools(len(a.Aggs)),
		})
		return &states[len(states)-1]
	}
	var end time.Duration
	var row expr.TupleRow
	last, err := a.Input.Run(ctx, func(t schema.Tuple, at time.Duration) error {
		// Fold-in charges are identical for every tuple of a page (same
		// cycles, same arrival), so they batch into one closed-form CPU
		// reservation per page; the fold itself happens immediately.
		ctx.chargeBatched(perTuple, at)
		keyBuf = keyBuf[:0]
		in := a.Input.Schema()
		for _, g := range a.GroupBy {
			keyBuf = in.EncodeValue(keyBuf, g, t[g])
		}
		st, ok := groups[string(keyBuf)]
		if !ok {
			st = newState()
			if len(a.GroupBy) > 0 {
				st.group = arena.Tuple(len(a.GroupBy))
				for i, g := range a.GroupBy {
					v := t[g]
					if v.Bytes != nil {
						v.Bytes = arena.CloneBytes(v.Bytes)
					}
					st.group[i] = v
				}
			}
			groups[string(keyBuf)] = st
			order = append(order, string(keyBuf))
		}
		row = expr.TupleRow(t)
		for i, s := range a.Aggs {
			switch s.Kind {
			case Count:
				st.vals[i]++
			case Sum:
				st.vals[i] += s.E.Eval(&row).Int
			case Min:
				v := s.E.Eval(&row).Int
				if !st.seen[i] || v < st.vals[i] {
					st.vals[i] = v
				}
			case Max:
				v := s.E.Eval(&row).Int
				if !st.seen[i] || v > st.vals[i] {
					st.vals[i] = v
				}
			}
			st.seen[i] = true
		}
		return nil
	})
	if m := ctx.takeRunMax(); m > end {
		end = m
	}
	if err != nil {
		return end, err
	}
	if last > end {
		end = last
	}

	// Scalar aggregate over empty input still emits one row of zeros.
	if len(a.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = newState()
		order = append(order, "")
	}
	out := make(schema.Tuple, len(a.GroupBy)+len(a.Aggs))
	for _, key := range order {
		st := groups[key]
		done := ctx.charge(cost.EmitCycles, end)
		copy(out, st.group)
		for i, v := range st.vals {
			out[len(a.GroupBy)+i] = schema.IntVal(v)
		}
		ctx.Stats.RowsEmitted++
		if err := emit(out, done); err != nil {
			return end, err
		}
		if done > end {
			end = done
		}
	}
	return end, nil
}

// Collect runs op and returns all output tuples (deep-copied into an
// arena owned by the result) and the run's completion time — the
// standard way tests and the harness consume a plan.
func Collect(ctx *Ctx, op Operator) ([]schema.Tuple, time.Duration, error) {
	var rows []schema.Tuple
	var arena schema.TupleArena
	sink := func(t schema.Tuple, _ time.Duration) error {
		rows = append(rows, arena.Clone(t))
		return nil
	}
	end, err, vectorized := runVectorized(ctx, op, sink)
	if !vectorized {
		end, err = op.Run(ctx, sink)
	}
	// Safety barrier: a well-formed operator takes its own batched runs
	// at its phase boundaries, but flush here so no charge can outlive
	// the run even if a future operator forgets.
	if m := ctx.takeRunMax(); m > end {
		end = m
	}
	return rows, end, err
}
