package exec

import (
	"testing"
	"time"

	"smartssd/internal/bufpool"
	"smartssd/internal/expr"
	"smartssd/internal/heap"
	"smartssd/internal/nand"
	"smartssd/internal/page"
	"smartssd/internal/schema"
	"smartssd/internal/sim"
	"smartssd/internal/ssd"
)

func testSchemaR() *schema.Schema {
	return schema.New(
		schema.Column{Name: "r_id", Kind: schema.Int64},
		schema.Column{Name: "r_val", Kind: schema.Int32},
	)
}

func testSchemaS() *schema.Schema {
	return schema.New(
		schema.Column{Name: "s_id", Kind: schema.Int64},
		schema.Column{Name: "s_fk", Kind: schema.Int64},
		schema.Column{Name: "s_val", Kind: schema.Int32},
		schema.Column{Name: "s_tag", Kind: schema.Char, Len: 6},
	)
}

func newDev(t *testing.T) *ssd.Device {
	t.Helper()
	p := ssd.DefaultParams()
	p.Geometry = nand.Geometry{
		Channels: 8, ChipsPerChannel: 2, BlocksPerChip: 16, PagesPerBlock: 32, PageSize: 8192,
	}
	d, err := ssd.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// fixture loads R (nR rows) and S (nS rows, s_fk = i % nR) on one device.
type fixture struct {
	dev  *ssd.Device
	r, s *heap.File
	nR   int
	nS   int
}

func newFixture(t *testing.T, layout page.Layout, nR, nS int) *fixture {
	t.Helper()
	dev := newDev(t)
	var alloc heap.Allocator
	r, err := heap.Create("R", dev, &alloc, testSchemaR(), layout, 64)
	if err != nil {
		t.Fatal(err)
	}
	s, err := heap.Create("S", dev, &alloc, testSchemaS(), layout, 256)
	if err != nil {
		t.Fatal(err)
	}
	app := r.NewAppender()
	for i := 0; i < nR; i++ {
		if err := app.Append(schema.Tuple{schema.IntVal(int64(i)), schema.IntVal(int64(i * 10))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	app = s.NewAppender()
	for i := 0; i < nS; i++ {
		tag := "even  "
		if i%2 == 1 {
			tag = "odd   "
		}
		err := app.Append(schema.Tuple{
			schema.IntVal(int64(i)),
			schema.IntVal(int64(i % nR)),
			schema.IntVal(int64(i % 100)),
			schema.StrVal(tag),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	dev.ResetTiming()
	return &fixture{dev: dev, r: r, s: s, nR: nR, nS: nS}
}

func TestTableScanCorrectnessAndTiming(t *testing.T) {
	for _, layout := range []page.Layout{page.NSM, page.PAX} {
		t.Run(layout.String(), func(t *testing.T) {
			fx := newFixture(t, layout, 50, 50000)
			ctx := NewCtx(DefaultHost())
			scan := &TableScan{File: fx.s}
			rows, end, err := Collect(ctx, scan)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != fx.nS {
				t.Fatalf("scanned %d rows, want %d", len(rows), fx.nS)
			}
			for i, r := range rows {
				if r[0].Int != int64(i) {
					t.Fatalf("row %d out of order: %d", i, r[0].Int)
				}
			}
			// Timing: a cold sequential host scan is link-bound near
			// 550 MB/s, plus a sub-millisecond pipeline-fill latency.
			bytes := fx.s.Bytes()
			wantMin := time.Duration(float64(bytes) / (560 * sim.MB) * float64(time.Second))
			wantMax := time.Duration(float64(bytes)/(550*sim.MB)*float64(time.Second)) + time.Millisecond
			if end < wantMin || end > wantMax {
				t.Fatalf("scan end = %v, want in [%v, %v] (link-bound)", end, wantMin, wantMax)
			}
			if ctx.Stats.PagesRead != fx.s.Pages() {
				t.Fatalf("PagesRead = %d, want %d", ctx.Stats.PagesRead, fx.s.Pages())
			}
		})
	}
}

func TestScanWithInlinePredicate(t *testing.T) {
	fx := newFixture(t, page.NSM, 50, 3000)
	ctx := NewCtx(DefaultHost())
	pred := expr.Cmp{Op: expr.LT, L: expr.ColRef(testSchemaS(), "s_val"), R: expr.IntConst(10)}
	rows, _, err := Collect(ctx, &TableScan{File: fx.s, Filter: pred})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < fx.nS; i++ {
		if i%100 < 10 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("filtered scan: %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r[2].Int >= 10 {
			t.Fatalf("row with s_val=%d passed filter", r[2].Int)
		}
	}
}

func TestFilterOperatorMatchesInlineFilter(t *testing.T) {
	fx := newFixture(t, page.PAX, 50, 3000)
	pred := expr.Cmp{Op: expr.GE, L: expr.ColRef(testSchemaS(), "s_val"), R: expr.IntConst(95)}

	ctx1 := NewCtx(DefaultHost())
	inline, _, err := Collect(ctx1, &TableScan{File: fx.s, Filter: pred})
	if err != nil {
		t.Fatal(err)
	}
	fx.dev.ResetTiming()
	ctx2 := NewCtx(DefaultHost())
	composed, _, err := Collect(ctx2, &Filter{Input: &TableScan{File: fx.s}, Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	if len(inline) != len(composed) {
		t.Fatalf("inline %d rows, composed %d", len(inline), len(composed))
	}
	for i := range inline {
		if inline[i][0].Int != composed[i][0].Int {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestProject(t *testing.T) {
	fx := newFixture(t, page.NSM, 10, 500)
	s := testSchemaS()
	ctx := NewCtx(DefaultHost())
	p := &Project{
		Input: &TableScan{File: fx.s},
		Cols: []OutputCol{
			{Name: "double_val", E: expr.Arith{Op: expr.Mul, L: expr.ColRef(s, "s_val"), R: expr.IntConst(2)}},
			{Name: "tag", E: expr.ColRef(s, "s_tag")},
		},
	}
	if p.Schema().NumColumns() != 2 {
		t.Fatalf("projected schema = %v", p.Schema())
	}
	if p.Schema().Column(1).Len != 6 {
		t.Fatalf("projected CHAR width = %d, want 6", p.Schema().Column(1).Len)
	}
	rows, _, err := Collect(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r[0].Int != int64(i%100)*2 {
			t.Fatalf("row %d double_val = %d", i, r[0].Int)
		}
	}
}

func TestHashJoinCorrectness(t *testing.T) {
	fx := newFixture(t, page.NSM, 40, 2000)
	ctx := NewCtx(DefaultHost())
	join := &HashJoin{
		Build:    &TableScan{File: fx.r},
		Probe:    &TableScan{File: fx.s},
		BuildKey: 0, // r_id
		ProbeKey: 1, // s_fk
	}
	rows, _, err := Collect(ctx, join)
	if err != nil {
		t.Fatal(err)
	}
	// Every S row matches exactly one R row (FK -> PK).
	if len(rows) != fx.nS {
		t.Fatalf("join produced %d rows, want %d", len(rows), fx.nS)
	}
	// Output: probe cols (s_id, s_fk, s_val, s_tag) then build cols
	// (r_id, r_val). Check the join condition and r_val derivation.
	for _, r := range rows {
		if r[1].Int != r[4].Int {
			t.Fatalf("join key mismatch: s_fk=%d r_id=%d", r[1].Int, r[4].Int)
		}
		if r[5].Int != r[4].Int*10 {
			t.Fatalf("r_val=%d for r_id=%d", r[5].Int, r[4].Int)
		}
	}
	if ctx.Stats.HashBuilds != int64(fx.nR) {
		t.Fatalf("HashBuilds = %d, want %d", ctx.Stats.HashBuilds, fx.nR)
	}
	if ctx.Stats.HashProbes != int64(fx.nS) {
		t.Fatalf("HashProbes = %d, want %d", ctx.Stats.HashProbes, fx.nS)
	}
}

func TestHashJoinWithSelection(t *testing.T) {
	fx := newFixture(t, page.PAX, 40, 2000)
	s := testSchemaS()
	ctx := NewCtx(DefaultHost())
	sel := expr.Cmp{Op: expr.LT, L: expr.ColRef(s, "s_val"), R: expr.IntConst(5)}
	join := &HashJoin{
		Build:    &TableScan{File: fx.r},
		Probe:    &TableScan{File: fx.s, Filter: sel},
		BuildKey: 0,
		ProbeKey: 1,
	}
	rows, _, err := Collect(ctx, join)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < fx.nS; i++ {
		if i%100 < 5 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("selective join: %d rows, want %d", len(rows), want)
	}
}

func TestScalarAggregate(t *testing.T) {
	fx := newFixture(t, page.NSM, 10, 1234)
	s := testSchemaS()
	ctx := NewCtx(DefaultHost())
	agg := &Aggregate{
		Input: &TableScan{File: fx.s},
		Aggs: []AggSpec{
			{Kind: Sum, E: expr.ColRef(s, "s_val"), Name: "sum_val"},
			{Kind: Count, Name: "cnt"},
			{Kind: Min, E: expr.ColRef(s, "s_id"), Name: "min_id"},
			{Kind: Max, E: expr.ColRef(s, "s_id"), Name: "max_id"},
		},
	}
	rows, _, err := Collect(ctx, agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("scalar agg emitted %d rows", len(rows))
	}
	var wantSum int64
	for i := 0; i < fx.nS; i++ {
		wantSum += int64(i % 100)
	}
	got := rows[0]
	if got[0].Int != wantSum {
		t.Errorf("sum = %d, want %d", got[0].Int, wantSum)
	}
	if got[1].Int != int64(fx.nS) {
		t.Errorf("count = %d, want %d", got[1].Int, fx.nS)
	}
	if got[2].Int != 0 || got[3].Int != int64(fx.nS-1) {
		t.Errorf("min/max = %d/%d", got[2].Int, got[3].Int)
	}
}

func TestGroupedAggregate(t *testing.T) {
	fx := newFixture(t, page.NSM, 10, 1000)
	s := testSchemaS()
	ctx := NewCtx(DefaultHost())
	agg := &Aggregate{
		Input:   &TableScan{File: fx.s},
		GroupBy: []int{3}, // s_tag: "even"/"odd"
		Aggs: []AggSpec{
			{Kind: Count, Name: "cnt"},
			{Kind: Sum, E: expr.ColRef(s, "s_id"), Name: "sum_id"},
		},
	}
	rows, _, err := Collect(ctx, agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("grouped agg emitted %d groups, want 2", len(rows))
	}
	byTag := map[string][]int64{}
	for _, r := range rows {
		byTag[schema.FormatValue(schema.Char, r[0])] = []int64{r[1].Int, r[2].Int}
	}
	if byTag["even"][0] != 500 || byTag["odd"][0] != 500 {
		t.Fatalf("group counts = %v", byTag)
	}
	var evenSum, oddSum int64
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			evenSum += int64(i)
		} else {
			oddSum += int64(i)
		}
	}
	if byTag["even"][1] != evenSum || byTag["odd"][1] != oddSum {
		t.Fatalf("group sums = %v, want %d/%d", byTag, evenSum, oddSum)
	}
}

func TestScalarAggregateOverEmptyInput(t *testing.T) {
	fx := newFixture(t, page.NSM, 10, 500)
	s := testSchemaS()
	ctx := NewCtx(DefaultHost())
	never := expr.Cmp{Op: expr.LT, L: expr.ColRef(s, "s_val"), R: expr.IntConst(-1)}
	agg := &Aggregate{
		Input: &TableScan{File: fx.s, Filter: never},
		Aggs:  []AggSpec{{Kind: Sum, E: expr.ColRef(s, "s_val"), Name: "x"}, {Kind: Count, Name: "c"}},
	}
	rows, _, err := Collect(ctx, agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int != 0 || rows[0][1].Int != 0 {
		t.Fatalf("empty-input scalar agg = %v", rows)
	}
}

func TestBufferPoolScanServesHitsWithoutIO(t *testing.T) {
	fx := newFixture(t, page.NSM, 10, 2000)
	pool := bufpool.New(int(fx.s.Pages())+8, nil)
	// First scan: cold, warms the pool.
	ctx := NewCtx(DefaultHost())
	rows1, _, err := Collect(ctx, &TableScan{File: fx.s, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	ioAfterCold := fx.dev.Activity().FlashPagesRead
	if ioAfterCold == 0 {
		t.Fatal("cold scan did no I/O")
	}
	// Second scan: fully cached, must do zero device I/O.
	rows2, _, err := Collect(NewCtx(DefaultHost()), &TableScan{File: fx.s, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if got := fx.dev.Activity().FlashPagesRead; got != ioAfterCold {
		t.Fatalf("warm scan did %d extra page reads", got-ioAfterCold)
	}
	if len(rows1) != len(rows2) {
		t.Fatalf("warm scan rows %d != cold %d", len(rows2), len(rows1))
	}
	for i := range rows1 {
		if rows1[i][0].Int != rows2[i][0].Int {
			t.Fatalf("row %d differs between cold and warm scans", i)
		}
	}
}

func TestExplainTree(t *testing.T) {
	fx := newFixture(t, page.NSM, 10, 100)
	s := testSchemaS()
	plan := &Aggregate{
		Input: &HashJoin{
			Build:    &TableScan{File: fx.r},
			Probe:    &TableScan{File: fx.s, Filter: expr.Cmp{Op: expr.LT, L: expr.ColRef(s, "s_val"), R: expr.IntConst(5)}},
			BuildKey: 0,
			ProbeKey: 1,
		},
		Aggs: []AggSpec{{Kind: Count, Name: "n"}},
	}
	out := ExplainTree(plan)
	for _, want := range []string{"Aggregate(COUNT(*))", "HashJoin", "TableScan(R", "TableScan(S", "filter"} {
		if !contains(out, want) {
			t.Errorf("ExplainTree missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

func TestEmitStopPropagates(t *testing.T) {
	fx := newFixture(t, page.NSM, 10, 1000)
	scan := &TableScan{File: fx.s}
	n := 0
	_, err := scan.Run(NewCtx(DefaultHost()), func(schema.Tuple, time.Duration) error {
		n++
		if n == 10 {
			return ErrStop
		}
		return nil
	})
	if err != ErrStop {
		t.Fatalf("err = %v, want ErrStop", err)
	}
	if n != 10 {
		t.Fatalf("emitted %d rows after stop", n)
	}
}

func TestHashJoinDuplicateBuildKeys(t *testing.T) {
	// Build side with duplicate keys: every probe row must match all of
	// them (standard inner-join multiplicity).
	dev := newDev(t)
	var alloc heap.Allocator
	dup := schema.New(
		schema.Column{Name: "d_key", Kind: schema.Int64},
		schema.Column{Name: "d_tag", Kind: schema.Int32},
	)
	b, err := heap.Create("dup", dev, &alloc, dup, page.NSM, 8)
	if err != nil {
		t.Fatal(err)
	}
	app := b.NewAppender()
	// Key 1 appears three times, key 2 once.
	for _, kv := range [][2]int64{{1, 10}, {1, 11}, {1, 12}, {2, 20}} {
		app.Append(schema.Tuple{schema.IntVal(kv[0]), schema.IntVal(kv[1])})
	}
	app.Close()
	probe, err := heap.Create("probe", dev, &alloc, dup, page.NSM, 8)
	if err != nil {
		t.Fatal(err)
	}
	app = probe.NewAppender()
	for _, kv := range [][2]int64{{1, 100}, {2, 200}, {3, 300}} {
		app.Append(schema.Tuple{schema.IntVal(kv[0]), schema.IntVal(kv[1])})
	}
	app.Close()
	dev.ResetTiming()

	join := &HashJoin{
		Build:    &TableScan{File: b},
		Probe:    &TableScan{File: probe},
		BuildKey: 0,
		ProbeKey: 0,
	}
	rows, _, err := Collect(NewCtx(DefaultHost()), join)
	if err != nil {
		t.Fatal(err)
	}
	// probe key 1 -> 3 matches, key 2 -> 1, key 3 -> 0.
	if len(rows) != 4 {
		t.Fatalf("join rows = %d, want 4", len(rows))
	}
	tags := map[int64]bool{}
	for _, r := range rows {
		if r[0].Int != r[2].Int {
			t.Fatalf("key mismatch in %v", r)
		}
		tags[r[3].Int] = true
	}
	for _, want := range []int64{10, 11, 12, 20} {
		if !tags[want] {
			t.Fatalf("missing build tag %d in %v", want, tags)
		}
	}
	// Join output schema disambiguates duplicate names.
	if join.Schema().ColumnIndex("d_key_r") < 0 {
		t.Fatalf("duplicate column not suffixed: %v", join.Schema())
	}
}

func TestGroupedAggregateOverJoin(t *testing.T) {
	fx := newFixture(t, page.NSM, 8, 1000)
	ctx := NewCtx(DefaultHost())
	join := &HashJoin{
		Build:    &TableScan{File: fx.r},
		Probe:    &TableScan{File: fx.s},
		BuildKey: 0,
		ProbeKey: 1,
	}
	// Group by r_id (combined col 4), count per group.
	agg := &Aggregate{
		Input:   join,
		GroupBy: []int{4},
		Aggs:    []AggSpec{{Kind: Count, Name: "c"}},
	}
	rows, _, err := Collect(ctx, agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != fx.nR {
		t.Fatalf("groups = %d, want %d", len(rows), fx.nR)
	}
	var total int64
	for _, r := range rows {
		total += r[1].Int
	}
	if total != int64(fx.nS) {
		t.Fatalf("group counts sum to %d, want %d", total, fx.nS)
	}
}

func TestGroupedOutputOrderIsFirstSeen(t *testing.T) {
	fx := newFixture(t, page.NSM, 10, 500)
	agg := &Aggregate{
		Input:   &TableScan{File: fx.s},
		GroupBy: []int{1}, // s_fk cycles 0..9
		Aggs:    []AggSpec{{Kind: Count, Name: "c"}},
	}
	rows, _, err := Collect(NewCtx(DefaultHost()), agg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r[0].Int != int64(i) {
			t.Fatalf("group order not first-seen: position %d has key %d", i, r[0].Int)
		}
	}
}
