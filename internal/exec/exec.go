// Package exec implements the host-side relational operators — the role
// SQL Server plays in the paper: table scan, filter, projection, simple
// hash join, and aggregation over heap files on simulated devices.
//
// Operators are push-based: each drives its input and emits tuples
// tagged with the virtual time they become available, so I/O arrival
// times flow through the pipeline and CPU work is charged against the
// host CPU model as tuples pass. The run's elapsed time is the
// completion time of the last emitted (or aggregated) tuple — exactly a
// pipelined execution on the simulated timeline.
package exec

import (
	"errors"
	"time"

	"smartssd/internal/expr"
	"smartssd/internal/schema"
	"smartssd/internal/sim"
)

// CostModel holds the host CPU cost constants, in cycles. The defaults
// describe a server-class core running tuple-at-a-time operator code
// (the paper's 2 GHz Xeon testbed).
type CostModel struct {
	// PageCycles is the fixed cost to latch, checksum, and set up
	// iteration over one page.
	PageCycles int64
	// TupleCycles is the per-tuple iteration/decode overhead (slot
	// lookup for NSM, offset arithmetic for PAX).
	TupleCycles int64
	// OpCycles is the cost per expression operator node per evaluation.
	OpCycles int64
	// HashBuildCycles is the cost to insert one tuple into a join hash
	// table; HashProbeCycles the cost to probe it once.
	HashBuildCycles int64
	HashProbeCycles int64
	// AggCycles is the cost to fold one tuple into an aggregate.
	AggCycles int64
	// EmitCycles is the cost to materialize one output tuple.
	EmitCycles int64
}

// DefaultCostModel reports host CPU costs for a 2 GHz out-of-order core.
func DefaultCostModel() CostModel {
	return CostModel{
		PageCycles:      600,
		TupleCycles:     12,
		OpCycles:        4,
		HashBuildCycles: 60,
		HashProbeCycles: 40,
		AggCycles:       10,
		EmitCycles:      20,
	}
}

// Host models the host machine's query-processing CPU: a multi-core
// rate server plus the cost constants charged against it.
type Host struct {
	CPU  *sim.Server
	Cost CostModel
}

// NewHost builds a host CPU model. The paper's testbed has two quad-core
// 2 GHz Xeons; cores is the number the executor may use.
func NewHost(perCore sim.Rate, cores int) *Host {
	return &Host{
		CPU:  sim.NewMultiServer("host-cpu", perCore, cores),
		Cost: DefaultCostModel(),
	}
}

// DefaultHost reports the paper's host: 8 cores at 2 GHz.
func DefaultHost() *Host { return NewHost(sim.GHz(2), 8) }

// Reset clears the host CPU timing state between runs.
func (h *Host) Reset() { h.CPU.Reset() }

// Stats counts work done during one run.
type Stats struct {
	PagesRead   int64
	RowsScanned int64
	RowsEmitted int64
	HashBuilds  int64
	HashProbes  int64
	CPUCycles   int64
}

// Scratch holds per-engine reusable arenas for operator state that
// lives exactly one run (hash-join build rows, aggregate group keys
// and accumulators). An engine that runs many queries resets the
// scratch between runs instead of regrowing fresh arenas, so a reused
// worker reaches steady-state zero allocation on these paths. Not safe
// for concurrent use; each engine owns its own.
type Scratch struct {
	build schema.TupleArena
	group schema.TupleArena
	// vec backs the vectorized path's column vectors and selection
	// vectors, carved once per run and reused page to page.
	vec schema.TupleArena
	// kernels caches compiled batch expressions across runs, keyed by
	// their canonical structural signature (expr.BatchExpr.Key), so a
	// reused engine compiles each distinct expression once.
	kernels map[string]*expr.BatchExpr
}

// Reset recycles the scratch arenas for the next run. Tuples carved
// during prior runs are invalidated; operators never leak scratch
// memory into results (Collect deep-copies into its own arena). The
// compiled-kernel cache survives Reset deliberately: kernels hold no
// run state beyond reusable scratch vectors.
func (s *Scratch) Reset() {
	s.build.Reset()
	s.group.Reset()
	s.vec.Reset()
}

// Ctx carries the host model and run statistics through an operator tree.
type Ctx struct {
	Host  *Host
	Stats Stats
	// Scratch, when set, provides reusable arenas for join build and
	// aggregate group state; operators fall back to run-local arenas
	// when it is nil.
	Scratch *Scratch
	// ScalarExec forces the scalar tuple-at-a-time path. The default
	// (false) lets Collect run recognized plan shapes through the
	// vectorized executor, which charges closed-form identical CPU
	// cycles (see vector.go).
	ScalarExec bool
	// BatchRows caps the selection-vector length handed downstream per
	// batch on the vectorized path; zero means whole-page batches.
	// Results and charges are identical at every setting (ServeRun is
	// additive); only wall-clock locality changes.
	BatchRows int

	// Pending batched charge run: runCount consecutive charges of
	// runCycles each, all ready at runReady, not yet scheduled on the
	// CPU server. Flushed as one ServeRun before any other charge, so
	// the global order of CPU reservations is exactly the sequential
	// one. runMax accumulates the completion times of flushed runs
	// until a consumer takes them.
	runCycles int64
	runReady  time.Duration
	runCount  int
	runMax    time.Duration
}

// NewCtx builds a run context over host.
func NewCtx(host *Host) *Ctx { return &Ctx{Host: host} }

// charge schedules cycles of CPU work ready at the given time and
// returns its completion time. Any pending batched run is flushed
// first, preserving the sequential order of CPU reservations.
func (c *Ctx) charge(cycles int64, ready time.Duration) time.Duration {
	if c.runCount > 0 {
		c.flushRun()
	}
	c.Stats.CPUCycles += cycles
	return c.Host.CPU.Serve(ready, cycles)
}

// chargeBatched accumulates one charge into the pending run when it
// matches the run's (cycles, ready) signature, starting a new run
// (flushing the old) otherwise. Callers that need the completion time
// of the whole phase take it with takeRunMax at the phase boundary;
// per-charge completion times are not observable on this path, which
// is what lets identical charges collapse into one closed-form
// ServeRun reservation per lane.
func (c *Ctx) chargeBatched(cycles int64, ready time.Duration) {
	if c.runCount > 0 && (cycles != c.runCycles || ready != c.runReady) {
		c.flushRun()
	}
	c.runCycles = cycles
	c.runReady = ready
	c.runCount++
}

// chargeBatchedN accumulates n identical charges at once — exactly n
// successive chargeBatched calls with the same signature. The
// vectorized path uses it to book a whole selection vector's worth of
// per-tuple work (or a counted run of join-probe misses) in one call
// while preserving the scalar path's flush points: a signature change
// or any direct charge still flushes first.
func (c *Ctx) chargeBatchedN(cycles int64, ready time.Duration, n int) {
	if n <= 0 {
		return
	}
	if c.runCount > 0 && (cycles != c.runCycles || ready != c.runReady) {
		c.flushRun()
	}
	c.runCycles = cycles
	c.runReady = ready
	c.runCount += n
}

// chargeRun books k identical charges immediately — flush-equivalent to
// k successive charge calls with the same arguments — and returns the
// last completion time. Unlike flushRun it does NOT fold the completion
// into runMax: it replicates paths (Project's per-row output charges)
// whose scalar Serves never touch the batched-run accumulator, so a
// later takeRunMax barrier sees exactly what the scalar path's would.
func (c *Ctx) chargeRun(cycles int64, ready time.Duration, k int) time.Duration {
	if c.runCount > 0 {
		c.flushRun()
	}
	if k <= 0 {
		return ready
	}
	c.Stats.CPUCycles += cycles * int64(k)
	return c.Host.CPU.ServeRun(ready, cycles, k)
}

// flushRun schedules the pending batched run as one ServeRun call —
// timing- and counter-identical to runCount sequential Serves — and
// folds its completion time into runMax.
func (c *Ctx) flushRun() {
	if c.runCount == 0 {
		return
	}
	k := c.runCount
	c.runCount = 0
	c.Stats.CPUCycles += c.runCycles * int64(k)
	if done := c.Host.CPU.ServeRun(c.runReady, c.runCycles, k); done > c.runMax {
		c.runMax = done
	}
}

// takeRunMax flushes any pending batched run and returns the maximum
// completion time of all runs flushed since the previous take,
// resetting the accumulator. Each batching phase takes its own maximum
// at its phase boundary, so one phase's completion times never inflate
// another's (a nested operator's charges stay out of an enclosing
// build-side barrier, keeping timing byte-identical to sequential).
func (c *Ctx) takeRunMax() time.Duration {
	c.flushRun()
	m := c.runMax
	c.runMax = 0
	return m
}

// Emit receives one output tuple and the virtual time it became
// available. Implementations must not retain t; it may be reused.
type Emit func(t schema.Tuple, at time.Duration) error

// Operator is a push-based relational operator.
type Operator interface {
	// Schema reports the output tuple schema.
	Schema() *schema.Schema
	// Run executes the operator, calling emit for every output tuple,
	// and returns the virtual completion time of the whole run.
	Run(ctx *Ctx, emit Emit) (time.Duration, error)
	// Explain renders one line describing this operator (children are
	// rendered by ExplainTree).
	Explain() string
	// Children reports the operator's inputs.
	Children() []Operator
}

// ErrStop may be returned by an Emit to stop execution early without
// reporting an error (used by LIMIT-style consumers and tests).
var ErrStop = errors.New("exec: stop requested")

// ExplainTree renders an operator tree, one operator per line.
func ExplainTree(op Operator) string {
	var b []byte
	var walk func(o Operator, depth int)
	walk = func(o Operator, depth int) {
		for i := 0; i < depth; i++ {
			b = append(b, ' ', ' ')
		}
		b = append(b, o.Explain()...)
		b = append(b, '\n')
		for _, c := range o.Children() {
			walk(c, depth+1)
		}
	}
	walk(op, 0)
	return string(b)
}

// concatSchemas builds the output schema of a join: left columns then
// right columns, with duplicate names disambiguated by suffix.
func concatSchemas(l, r *schema.Schema) *schema.Schema {
	cols := make([]schema.Column, 0, l.NumColumns()+r.NumColumns())
	seen := map[string]bool{}
	for i := 0; i < l.NumColumns(); i++ {
		c := l.Column(i)
		seen[c.Name] = true
		cols = append(cols, c)
	}
	for i := 0; i < r.NumColumns(); i++ {
		c := r.Column(i)
		for seen[c.Name] {
			c.Name += "_r"
		}
		seen[c.Name] = true
		cols = append(cols, c)
	}
	return schema.New(cols...)
}
