package nand

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"smartssd/internal/sim"
)

func testGeo() Geometry {
	return Geometry{
		Channels:        4,
		ChipsPerChannel: 2,
		BlocksPerChip:   8,
		PagesPerBlock:   16,
		PageSize:        512,
	}
}

func testTiming() Timing {
	return Timing{
		ReadLatency:    50 * time.Microsecond,
		ProgramLatency: 900 * time.Microsecond,
		EraseLatency:   3 * time.Millisecond,
		ChannelRate:    sim.MBps(200),
	}
}

func newTestArray(t *testing.T) *Array {
	t.Helper()
	a, err := NewArray(testGeo(), testTiming())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestGeometryTotals(t *testing.T) {
	g := testGeo()
	if got, want := g.Chips(), 8; got != want {
		t.Errorf("Chips = %d, want %d", got, want)
	}
	if got, want := g.TotalPages(), int64(8*8*16); got != want {
		t.Errorf("TotalPages = %d, want %d", got, want)
	}
	if got, want := g.TotalBytes(), int64(8*8*16*512); got != want {
		t.Errorf("TotalBytes = %d, want %d", got, want)
	}
	if got, want := g.TotalBlocks(), int64(8*8); got != want {
		t.Errorf("TotalBlocks = %d, want %d", got, want)
	}
}

func TestGeometryValidate(t *testing.T) {
	g := testGeo()
	if err := g.Validate(); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
	bad := g
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero-channel geometry accepted")
	}
	if _, err := NewArray(bad, testTiming()); err == nil {
		t.Error("NewArray accepted invalid geometry")
	}
}

func TestComposeDecomposeRoundTrip(t *testing.T) {
	g := testGeo()
	f := func(n uint16) bool {
		p := PPA(int64(n) % g.TotalPages())
		a := g.Decompose(p)
		if a.Channel < 0 || a.Channel >= g.Channels ||
			a.Chip < 0 || a.Chip >= g.ChipsPerChannel ||
			a.Block < 0 || a.Block >= g.BlocksPerChip ||
			a.Page < 0 || a.Page >= g.PagesPerBlock {
			return false
		}
		return g.Compose(a) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockPagesAreChipLocal(t *testing.T) {
	g := testGeo()
	// All pages of any block must decompose to the same channel+chip.
	for b := BlockID(0); int64(b) < g.TotalBlocks(); b++ {
		first := g.Decompose(g.FirstPage(b))
		for i := 0; i < g.PagesPerBlock; i++ {
			a := g.Decompose(g.FirstPage(b) + PPA(i))
			if a.Channel != first.Channel || a.Chip != first.Chip || a.Block != first.Block {
				t.Fatalf("block %d page %d strayed to %+v (block starts at %+v)", b, i, a, first)
			}
		}
		if g.ChannelOf(b) != first.Channel {
			t.Fatalf("ChannelOf(%d) = %d, want %d", b, g.ChannelOf(b), first.Channel)
		}
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	a := newTestArray(t)
	data := bytes.Repeat([]byte{0xAB}, 512)
	if err := a.Program(0, data); err != nil {
		t.Fatalf("Program: %v", err)
	}
	got, err := a.Read(0)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read data differs from programmed data")
	}
}

func TestProgramCopiesData(t *testing.T) {
	a := newTestArray(t)
	data := bytes.Repeat([]byte{1}, 512)
	a.Program(0, data)
	data[0] = 99 // caller mutates its buffer after programming
	got, _ := a.Read(0)
	if got[0] != 1 {
		t.Fatal("Program aliased caller buffer instead of copying")
	}
}

func TestReadErasedFails(t *testing.T) {
	a := newTestArray(t)
	if _, err := a.Read(3); !errors.Is(err, ErrReadErased) {
		t.Fatalf("Read of erased page: err = %v, want ErrReadErased", err)
	}
}

func TestProgramTwiceFails(t *testing.T) {
	a := newTestArray(t)
	data := make([]byte, 512)
	if err := a.Program(0, data); err != nil {
		t.Fatal(err)
	}
	if err := a.Program(0, data); !errors.Is(err, ErrNotErased) {
		t.Fatalf("reprogram err = %v, want ErrNotErased", err)
	}
}

func TestProgramOrderWithinBlock(t *testing.T) {
	a := newTestArray(t)
	data := make([]byte, 512)
	// Page 1 of block 0 before page 0 must fail.
	if err := a.Program(1, data); !errors.Is(err, ErrProgramOrder) {
		t.Fatalf("out-of-order program err = %v, want ErrProgramOrder", err)
	}
	if err := a.Program(0, data); err != nil {
		t.Fatal(err)
	}
	if err := a.Program(1, data); err != nil {
		t.Fatalf("in-order program failed: %v", err)
	}
}

func TestEraseResetsBlock(t *testing.T) {
	a := newTestArray(t)
	data := make([]byte, 512)
	for i := 0; i < testGeo().PagesPerBlock; i++ {
		if err := a.Program(PPA(i), data); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Erase(0); err != nil {
		t.Fatal(err)
	}
	if a.State(0) != Erased {
		t.Fatal("page not erased after block erase")
	}
	if _, err := a.Read(0); err == nil {
		t.Fatal("read after erase succeeded")
	}
	// Frontier resets: programming page 0 again must work.
	if err := a.Program(0, data); err != nil {
		t.Fatalf("program after erase: %v", err)
	}
	if got := a.EraseCount(0); got != 1 {
		t.Fatalf("EraseCount = %d, want 1", got)
	}
}

func TestWrongPayloadSize(t *testing.T) {
	a := newTestArray(t)
	if err := a.Program(0, make([]byte, 100)); !errors.Is(err, ErrWrongPageSize) {
		t.Fatalf("short payload err = %v, want ErrWrongPageSize", err)
	}
}

func TestOutOfRangeAddresses(t *testing.T) {
	a := newTestArray(t)
	total := PPA(testGeo().TotalPages())
	if _, err := a.Read(total); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Read past end err = %v", err)
	}
	if err := a.Program(-1, make([]byte, 512)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Program(-1) err = %v", err)
	}
	if err := a.Erase(BlockID(testGeo().TotalBlocks())); !errors.Is(err, ErrBlockOutOfSpan) {
		t.Errorf("Erase past end err = %v", err)
	}
}

func TestStats(t *testing.T) {
	a := newTestArray(t)
	data := make([]byte, 512)
	a.Program(0, data)
	a.Program(1, data)
	a.Read(0)
	a.Erase(0)
	s := a.Stats()
	if s.Programs != 2 || s.Reads != 1 || s.Erases != 1 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.MaxEraseCount != 1 || s.MinEraseCount != 0 {
		t.Fatalf("wear spread = %+v", s)
	}
}
