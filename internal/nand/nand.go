// Package nand models a NAND flash memory array: the persistent medium
// at the bottom of the SSD simulator (Figure 2 of the paper).
//
// The model captures the properties that matter for query-processing
// experiments:
//
//   - Geometry: channels × chips × blocks × pages, with the page as the
//     unit of read/program and the block as the unit of erase.
//   - Physical constraints: a page must be erased before it can be
//     programmed, pages within a block are programmed in order, and data
//     really is stored and returned bit-exact (queries run on real bytes).
//   - Timing constants: cell-to-register read latency, program and erase
//     latencies, and the channel bus transfer rate — consumed by the SSD
//     controller (package ssd) which owns scheduling.
//
// Addressing uses a linear physical page address (PPA). The mapping
// between a PPA and its (channel, chip, block, page) coordinates is
// chip-major: a block's pages are contiguous within one chip, so channel
// interleaving is the FTL's job (it stripes consecutive writes across
// channels), just as in real controllers.
package nand

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"smartssd/internal/fault"
	"smartssd/internal/sim"
)

// Geometry describes the physical organization of the flash array.
type Geometry struct {
	Channels        int // independent flash channels
	ChipsPerChannel int // dies per channel (chip-level interleaving)
	BlocksPerChip   int // erase blocks per die
	PagesPerBlock   int // pages per erase block
	PageSize        int // bytes per page
}

// Validate reports whether the geometry is internally consistent.
func (g Geometry) Validate() error {
	if g.Channels < 1 || g.ChipsPerChannel < 1 || g.BlocksPerChip < 1 ||
		g.PagesPerBlock < 1 || g.PageSize < 1 {
		return fmt.Errorf("nand: non-positive geometry field: %+v", g)
	}
	return nil
}

// Chips reports the total number of dies.
func (g Geometry) Chips() int { return g.Channels * g.ChipsPerChannel }

// PagesPerChip reports the number of pages on one die.
func (g Geometry) PagesPerChip() int { return g.BlocksPerChip * g.PagesPerBlock }

// TotalPages reports the number of physical pages in the array.
func (g Geometry) TotalPages() int64 {
	return int64(g.Chips()) * int64(g.PagesPerChip())
}

// TotalBytes reports the raw capacity of the array.
func (g Geometry) TotalBytes() int64 { return g.TotalPages() * int64(g.PageSize) }

// TotalBlocks reports the number of erase blocks in the array.
func (g Geometry) TotalBlocks() int64 { return int64(g.Chips()) * int64(g.BlocksPerChip) }

// PPA is a linear physical page address in [0, TotalPages).
type PPA int64

// Addr is the decomposed coordinate form of a PPA.
type Addr struct {
	Channel int
	Chip    int // chip index within its channel
	Block   int // block index within its chip
	Page    int // page index within its block
}

// Decompose splits a PPA into coordinates. Chip-major layout: all pages
// of a block are contiguous on one chip.
func (g Geometry) Decompose(p PPA) Addr {
	pageInChip := int(int64(p) % int64(g.PagesPerChip()))
	chipIdx := int(int64(p) / int64(g.PagesPerChip()))
	return Addr{
		Channel: chipIdx / g.ChipsPerChannel,
		Chip:    chipIdx % g.ChipsPerChannel,
		Block:   pageInChip / g.PagesPerBlock,
		Page:    pageInChip % g.PagesPerBlock,
	}
}

// Compose is the inverse of Decompose.
func (g Geometry) Compose(a Addr) PPA {
	chipIdx := a.Channel*g.ChipsPerChannel + a.Chip
	return PPA(int64(chipIdx)*int64(g.PagesPerChip()) +
		int64(a.Block)*int64(g.PagesPerBlock) + int64(a.Page))
}

// BlockID identifies an erase block globally.
type BlockID int64

// BlockOf reports the erase block containing p.
func (g Geometry) BlockOf(p PPA) BlockID {
	return BlockID(int64(p) / int64(g.PagesPerBlock))
}

// FirstPage reports the PPA of the first page in block b.
func (g Geometry) FirstPage(b BlockID) PPA {
	return PPA(int64(b) * int64(g.PagesPerBlock))
}

// ChannelOf reports the channel that block b's chip hangs off.
func (g Geometry) ChannelOf(b BlockID) int {
	return g.Decompose(g.FirstPage(b)).Channel
}

// Timing holds the NAND operation latencies and channel bus rate. These
// are consumed by the controller's schedulers in package ssd.
type Timing struct {
	// ReadLatency is tR: cell array to chip page register.
	ReadLatency time.Duration
	// ProgramLatency is tPROG: page register to cell array.
	ProgramLatency time.Duration
	// EraseLatency is tBERS: whole-block erase.
	EraseLatency time.Duration
	// ChannelRate is the flash channel bus bandwidth (register <->
	// controller), shared by all chips on one channel.
	ChannelRate sim.Rate
}

// PageState tracks the NAND lifecycle of one physical page.
type PageState uint8

const (
	// Erased pages may be programmed.
	Erased PageState = iota
	// Programmed pages hold valid data and must be erased (with their
	// whole block) before reprogramming.
	Programmed
)

// Errors reported by the array's physical-constraint checks.
var (
	ErrOutOfRange     = errors.New("nand: address out of range")
	ErrNotErased      = errors.New("nand: program to non-erased page")
	ErrProgramOrder   = errors.New("nand: out-of-order program within block")
	ErrReadErased     = errors.New("nand: read of erased page")
	ErrWrongPageSize  = errors.New("nand: payload is not one page")
	ErrBlockOutOfSpan = errors.New("nand: block id out of range")
)

// Errors reported by the array's reliability model (injected faults).
var (
	// ErrReadFault is a transient bit error: a re-read of the same page
	// through the FTL's retry ladder may succeed.
	ErrReadFault = errors.New("nand: transient read error")
	// ErrUncorrectable is a read error beyond ECC: the page's data is
	// lost and every retry fails the same way.
	ErrUncorrectable = errors.New("nand: uncorrectable read error")
	// ErrProgramFail is a page program failure; the page slot is
	// consumed and the FTL must remap the write elsewhere.
	ErrProgramFail = errors.New("nand: program failure")
	// ErrEraseFail is a block erase failure; the block is grown-bad and
	// must be retired by the FTL.
	ErrEraseFail = errors.New("nand: erase failure")
)

// Array is the flash medium: geometry plus per-page data and state.
// It enforces NAND physical constraints but performs no timing; the
// controller (package ssd) charges Timing costs against its schedulers.
//
// An Array is not safe for concurrent use; the simulator is
// single-threaded by design (deterministic virtual time).
type Array struct {
	geo    Geometry
	timing Timing
	data   [][]byte    // per PPA; nil until programmed
	state  []PageState // per PPA
	// writeFrontier tracks the next in-order programmable page per block.
	writeFrontier []int
	eraseCount    []int64 // per block, for wear accounting
	reads         int64
	programs      int64
	erases        int64
	// Cumulative cell-operation time at the array's Timing, for the
	// metrics layer. This mirrors what the controller charges against
	// its schedulers; the array itself still performs no timing.
	senseTime   time.Duration
	programTime time.Duration
	eraseTime   time.Duration
	inj         *fault.Injector // nil unless fault injection is enabled
	// cow marks the per-page and per-block slices as shared with at
	// least one clone. The first mutating operation (Program, Erase)
	// privatizes them. Reads never privatize: sharers only ever mutate
	// their own private copies, so shared slices are immutable. Atomic
	// so concurrent Clones of one read-only array stay race-free.
	cow atomic.Bool
}

// NewArray builds a flash array with the given geometry and timing.
func NewArray(geo Geometry, timing Timing) (*Array, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	n := geo.TotalPages()
	return &Array{
		geo:           geo,
		timing:        timing,
		data:          make([][]byte, n),
		state:         make([]PageState, n),
		writeFrontier: make([]int, geo.TotalBlocks()),
		eraseCount:    make([]int64, geo.TotalBlocks()),
	}, nil
}

// SetInjector attaches a fault injector to the array. A nil injector
// (the default) restores the fault-free medium.
func (a *Array) SetInjector(inj *fault.Injector) { a.inj = inj }

// Clone returns an array with the same geometry, contents, lifecycle
// state, and wear counters. Page buffers are shared, not copied: a
// programmed page's buffer is never mutated in place (Program requires
// the Erased state, and Erase drops the buffer before a slot can be
// reused), so clones reading the same PPA concurrently see immutable
// bytes. The outer per-page and per-block slices are shared
// copy-on-write: both sides keep reading the shared slices until one
// of them programs or erases, at which point that side privatizes its
// copies first. Cloning is therefore O(1) in array size for read-only
// workloads. Concurrent Clones of one array are safe (the shared mark
// is atomic) as long as no sharer is mutating; concurrent use of the
// resulting clones is always safe. The clone keeps the receiver's
// injector; callers wiring an isolated fault domain attach their own
// with SetInjector.
func (a *Array) Clone() *Array {
	a.cow.Store(true)
	c := &Array{
		geo:           a.geo,
		timing:        a.timing,
		data:          a.data,
		state:         a.state,
		writeFrontier: a.writeFrontier,
		eraseCount:    a.eraseCount,
		reads:         a.reads,
		programs:      a.programs,
		erases:        a.erases,
		senseTime:     a.senseTime,
		programTime:   a.programTime,
		eraseTime:     a.eraseTime,
		inj:           a.inj,
	}
	c.cow.Store(true)
	return c
}

// privatize deep-copies the copy-on-write slices before the first
// mutation, detaching this array from any sharers. Inner page buffers
// stay shared — they are immutable once programmed (see Clone).
func (a *Array) privatize() {
	if !a.cow.Load() {
		return
	}
	a.data = append([][]byte(nil), a.data...)
	a.state = append([]PageState(nil), a.state...)
	a.writeFrontier = append([]int(nil), a.writeFrontier...)
	a.eraseCount = append([]int64(nil), a.eraseCount...)
	a.cow.Store(false)
}

// Geometry reports the array's physical organization.
func (a *Array) Geometry() Geometry { return a.geo }

// Timing reports the array's operation latencies.
func (a *Array) Timing() Timing { return a.timing }

func (a *Array) checkPPA(p PPA) error {
	if p < 0 || int64(p) >= a.geo.TotalPages() {
		return fmt.Errorf("%w: ppa %d", ErrOutOfRange, p)
	}
	return nil
}

// Read returns the stored contents of page p. The returned slice aliases
// the array's storage; callers must not modify it.
func (a *Array) Read(p PPA) ([]byte, error) {
	if err := a.checkPPA(p); err != nil {
		return nil, err
	}
	if a.state[p] != Programmed {
		return nil, fmt.Errorf("%w: ppa %d", ErrReadErased, p)
	}
	a.reads++
	a.senseTime += a.timing.ReadLatency
	if fail, uncorrectable := a.inj.ReadError(uint64(p)); fail {
		if uncorrectable {
			return nil, fmt.Errorf("%w: ppa %d", ErrUncorrectable, p)
		}
		return nil, fmt.Errorf("%w: ppa %d", ErrReadFault, p)
	}
	return a.data[p], nil
}

// Program writes one page of data to p, enforcing erased-state and
// in-order-within-block constraints. The data is copied.
func (a *Array) Program(p PPA, data []byte) error {
	if err := a.checkPPA(p); err != nil {
		return err
	}
	if len(data) != a.geo.PageSize {
		return fmt.Errorf("%w: got %d bytes, page is %d", ErrWrongPageSize, len(data), a.geo.PageSize)
	}
	if a.state[p] != Erased {
		return fmt.Errorf("%w: ppa %d", ErrNotErased, p)
	}
	b := a.geo.BlockOf(p)
	inBlock := a.geo.Decompose(p).Page
	if inBlock != a.writeFrontier[b] {
		return fmt.Errorf("%w: ppa %d is page %d of block %d, frontier %d",
			ErrProgramOrder, p, inBlock, b, a.writeFrontier[b])
	}
	a.privatize()
	if a.inj.ProgramFail() {
		// A failed program still consumes the page slot: the cells are
		// in an indeterminate state and may not be reprogrammed until
		// the block is erased, so the frontier advances past the page.
		a.state[p] = Programmed
		a.data[p] = make([]byte, a.geo.PageSize)
		a.writeFrontier[b]++
		a.programs++
		a.programTime += a.timing.ProgramLatency
		return fmt.Errorf("%w: ppa %d", ErrProgramFail, p)
	}
	buf := a.data[p]
	if buf == nil {
		buf = make([]byte, a.geo.PageSize)
		a.data[p] = buf
	}
	copy(buf, data)
	a.state[p] = Programmed
	a.writeFrontier[b]++
	a.programs++
	a.programTime += a.timing.ProgramLatency
	return nil
}

// Erase resets every page of block b to Erased.
func (a *Array) Erase(b BlockID) error {
	if b < 0 || int64(b) >= a.geo.TotalBlocks() {
		return fmt.Errorf("%w: block %d", ErrBlockOutOfSpan, b)
	}
	if a.inj.EraseFail() {
		// The block keeps its current contents; the FTL retires it as
		// grown-bad instead of reusing it.
		return fmt.Errorf("%w: block %d", ErrEraseFail, b)
	}
	a.privatize()
	first := a.geo.FirstPage(b)
	for i := 0; i < a.geo.PagesPerBlock; i++ {
		p := first + PPA(i)
		a.state[p] = Erased
		a.data[p] = nil // release memory for simulation thrift
	}
	a.writeFrontier[b] = 0
	a.eraseCount[b]++
	a.erases++
	a.eraseTime += a.timing.EraseLatency
	return nil
}

// State reports the lifecycle state of page p.
func (a *Array) State(p PPA) PageState {
	if err := a.checkPPA(p); err != nil {
		panic(err)
	}
	return a.state[p]
}

// EraseCount reports how many times block b has been erased.
func (a *Array) EraseCount(b BlockID) int64 { return a.eraseCount[b] }

// Stats summarizes operation counts for wear and traffic reporting.
type Stats struct {
	Reads    int64
	Programs int64
	Erases   int64
	// SenseTime, ProgramTime and EraseTime are the cumulative cell time
	// the operations above spent at the array's Timing — how long the
	// medium itself was occupied, before channel and bus transfers.
	SenseTime   time.Duration
	ProgramTime time.Duration
	EraseTime   time.Duration
	// MaxEraseCount and MinEraseCount bound block wear across the array.
	MaxEraseCount int64
	MinEraseCount int64
}

// Stats reports cumulative operation counts and wear spread.
func (a *Array) Stats() Stats {
	s := Stats{
		Reads: a.reads, Programs: a.programs, Erases: a.erases,
		SenseTime: a.senseTime, ProgramTime: a.programTime, EraseTime: a.eraseTime,
	}
	if len(a.eraseCount) > 0 {
		s.MinEraseCount = a.eraseCount[0]
		for _, c := range a.eraseCount {
			if c > s.MaxEraseCount {
				s.MaxEraseCount = c
			}
			if c < s.MinEraseCount {
				s.MinEraseCount = c
			}
		}
	}
	return s
}
