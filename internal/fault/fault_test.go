package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledConfigReturnsNil(t *testing.T) {
	if inj := New(Config{Seed: 42}); inj != nil {
		t.Fatalf("zero-rate config must yield a nil injector, got %+v", inj)
	}
	var cfg Config
	if cfg.Enabled() {
		t.Fatal("zero Config reports Enabled")
	}
}

func TestNilInjectorIsNoOp(t *testing.T) {
	var inj *Injector
	if f, u := inj.ReadError(7); f || u {
		t.Fatal("nil ReadError injected")
	}
	if inj.ProgramFail() || inj.EraseFail() || inj.SessionAbort() || inj.GrantDenied() || inj.DeviceFail() || inj.Dead() {
		t.Fatal("nil injector fired a fault")
	}
	if inj.LatencySpike() != 0 || inj.DMAStall() != 0 || inj.GetTimeout() != 0 {
		t.Fatal("nil injector returned a delay")
	}
	inj.KillDevice()
	inj.MarkUncorrectable(3)
	inj.ClearUncorrectable(3)
	if inj.Stats() != (Stats{}) {
		t.Fatal("nil injector has stats")
	}
}

func TestArmedConstructsWithZeroRates(t *testing.T) {
	inj := New(Config{Seed: 1, Armed: true})
	if inj == nil {
		t.Fatal("Armed config must construct an injector")
	}
	if inj.SessionAbort() || inj.ProgramFail() {
		t.Fatal("armed zero-rate injector fired a random fault")
	}
	inj.KillDevice()
	if !inj.Dead() {
		t.Fatal("KillDevice did not stick")
	}
	inj.ReviveDevice()
	if inj.Dead() {
		t.Fatal("ReviveDevice did not clear")
	}
}

// Same seed, same draw sequence → same outcomes.
func TestDeterministicAcrossRuns(t *testing.T) {
	draw := func() []bool {
		inj := New(Config{Seed: 99, SessionAbortRate: 0.3, ProgramFailRate: 0.2})
		var out []bool
		for k := 0; k < 200; k++ {
			out = append(out, inj.SessionAbort(), inj.ProgramFail())
		}
		return out
	}
	a, b := draw(), draw()
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("draw %d differs between identical runs", k)
		}
	}
}

// Extra draws at one site must not shift outcomes at another site:
// each site owns an independent counter stream.
func TestSiteIndependence(t *testing.T) {
	seq := func(interleave bool) []bool {
		inj := New(Config{Seed: 7, SessionAbortRate: 0.4, ReadErrorRate: 0.4})
		var out []bool
		for k := 0; k < 100; k++ {
			if interleave {
				inj.ReadError(uint64(k)) // extra draws on an unrelated site
			}
			out = append(out, inj.SessionAbort())
		}
		return out
	}
	plain, mixed := seq(false), seq(true)
	for k := range plain {
		if plain[k] != mixed[k] {
			t.Fatalf("abort draw %d perturbed by read-error draws", k)
		}
	}
}

func TestRateIsRoughlyHonoured(t *testing.T) {
	inj := New(Config{Seed: 5, SessionAbortRate: 0.25})
	n, hits := 20000, 0
	for k := 0; k < n; k++ {
		if inj.SessionAbort() {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if got < 0.22 || got > 0.28 {
		t.Fatalf("abort rate %.4f far from configured 0.25", got)
	}
	if s := inj.Stats(); s.SessionAborts != int64(hits) {
		t.Fatalf("stats count %d != observed %d", s.SessionAborts, hits)
	}
}

func TestUncorrectableIsSticky(t *testing.T) {
	inj := New(Config{Seed: 1, Armed: true})
	inj.MarkUncorrectable(42)
	for k := 0; k < 3; k++ {
		fail, unc := inj.ReadError(42)
		if !fail || !unc {
			t.Fatalf("read %d of sticky page did not fail uncorrectably", k)
		}
	}
	if f, _ := inj.ReadError(43); f {
		t.Fatal("unrelated page failed")
	}
	inj.ClearUncorrectable(42)
	if f, _ := inj.ReadError(42); f {
		t.Fatal("cleared page still fails")
	}
	if s := inj.Stats(); s.StickyBadPages != 0 {
		t.Fatalf("StickyBadPages = %d after clear", s.StickyBadPages)
	}
}

func TestDeviceFailIsPermanent(t *testing.T) {
	inj := New(Config{Seed: 3, DeviceFailRate: 1})
	if !inj.DeviceFail() {
		t.Fatal("rate-1 device fail did not fire")
	}
	for k := 0; k < 5; k++ {
		if !inj.DeviceFail() {
			t.Fatal("dead device came back")
		}
	}
	if s := inj.Stats(); s.DeviceFailures != 1 || !s.DeviceDead {
		t.Fatalf("stats %+v after permanent failure", s)
	}
}

func TestDelaysUseConfiguredDurations(t *testing.T) {
	inj := New(Config{Seed: 2, LatencySpikeRate: 1, LatencySpike: 111, DMAStallRate: 1, DMAStall: 222, GetTimeoutRate: 1, GetTimeout: 333})
	if d := inj.LatencySpike(); d != 111 {
		t.Fatalf("spike %d != 111", d)
	}
	if d := inj.DMAStall(); d != 222 {
		t.Fatalf("stall %d != 222", d)
	}
	if d := inj.GetTimeout(); d != 333 {
		t.Fatalf("timeout %d != 333", d)
	}
	s := inj.Stats()
	if s.SpikeDelay != 111 || s.StallDelay != 222 {
		t.Fatalf("delay accounting %+v", s)
	}
}

func TestDeadline(t *testing.T) {
	if err := Deadline(5*time.Millisecond, 10*time.Millisecond); err != nil {
		t.Fatalf("under-limit run timed out: %v", err)
	}
	if err := Deadline(10*time.Millisecond, 10*time.Millisecond); err != nil {
		t.Fatalf("exactly-at-limit run timed out: %v", err)
	}
	if err := Deadline(time.Hour, 0); err != nil {
		t.Fatalf("zero limit must mean no deadline: %v", err)
	}
	err := Deadline(11*time.Millisecond, 10*time.Millisecond)
	if err == nil {
		t.Fatal("over-limit run passed")
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("errors.Is(err, ErrDeadlineExceeded) = false for %v", err)
	}
}
