// Package fault is a seedable, deterministic fault injector for the
// Smart SSD simulator. It models the reliability events that the
// paper's §5 names as open challenges — flash read errors, program and
// erase failures, controller latency spikes, and failures of user code
// running inside the device — as draws from counter-based hash streams
// so that a fixed seed always reproduces the same fault schedule.
//
// Determinism. Every injection site owns an independent stream keyed
// by (seed, site); each draw hashes the site's monotonically
// increasing counter through splitmix64. Sites never share state, so
// adding draws at one site (or reordering two sites) does not perturb
// the outcomes at any other site. Faults are therefore a function of
// the workload's own event sequence, not of wall-clock time or
// goroutine scheduling.
//
// Opt-in. A zero-value Config is disabled: New returns nil, and every
// Injector method is nil-receiver safe and a no-op, so un-faulted runs
// execute byte-identical code paths to a build without this package.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrDeadlineExceeded reports that a run's simulated elapsed time
// overshot the caller's deadline. It is the host-side cousin of the
// device GET timeout: the work completed, but later than the caller was
// willing to wait, so the serving layer reports it through the same
// get-timeout fault class instead of returning the late answer.
var ErrDeadlineExceeded = errors.New("fault: deadline exceeded")

// Deadline checks a completed run's simulated elapsed time against the
// caller's limit. A limit of zero (or negative) means no deadline. The
// returned error wraps ErrDeadlineExceeded for errors.Is. Because both
// operands are simulated durations, the check is deterministic: the
// same workload against the same limit always times out the same way.
func Deadline(elapsed, limit time.Duration) error {
	if limit <= 0 || elapsed <= limit {
		return nil
	}
	return fmt.Errorf("%w: ran %v of %v allowed", ErrDeadlineExceeded, elapsed, limit)
}

// Config selects fault rates per injection site. All rates are
// probabilities in [0,1]; a zero value disables that site. Durations
// are in simulated nanoseconds.
type Config struct {
	// Seed keys every fault stream. Two runs with equal Config and
	// equal workloads draw identical fault schedules.
	Seed int64

	// Armed forces construction of an injector even when every rate
	// is zero, so tests and experiments can trigger faults directly
	// (KillDevice, MarkUncorrectable) without enabling random draws.
	Armed bool

	// NAND layer.
	ReadErrorRate     float64 // transient bit error on a page read (ECC retry may recover)
	UncorrectableRate float64 // read error that no retry recovers (sticky: page is lost)
	ProgramFailRate   float64 // page program fails; FTL must remap to a fresh page
	EraseFailRate     float64 // block erase fails; block is grown-bad and retired

	// SSD controller layer.
	LatencySpikeRate float64 // a flash op is delayed by LatencySpike
	LatencySpike     int64   // duration of one spike (ns); default 250µs
	DMAStallRate     float64 // a DMA transfer stalls for DMAStall first
	DMAStall         int64   // duration of one stall (ns); default 100µs

	// Device runtime layer.
	SessionAbortRate float64 // an open session aborts mid-GET
	GrantDenialRate  float64 // an OPEN is refused its memory grant
	GetTimeoutRate   float64 // device CPU hang: one GET stalls then times out
	GetTimeout       int64   // how long a hung GET blocks the host (ns); default 10ms
	DeviceFailRate   float64 // whole-device failure at OPEN: device is dead thereafter

	// Durability layer (WAL and guarded data writes).
	PowerCutAfter  int64   // power fails during the Nth guarded durable write (1-based); 0 = never
	TornWriteRate  float64 // a WAL page write persists only a prefix, silently
	LogCorruptRate float64 // one WAL record byte flips before the page checksum seals
}

// Enabled reports whether this configuration injects anything.
func (c Config) Enabled() bool {
	return c.Armed ||
		c.ReadErrorRate > 0 || c.UncorrectableRate > 0 ||
		c.ProgramFailRate > 0 || c.EraseFailRate > 0 ||
		c.LatencySpikeRate > 0 || c.DMAStallRate > 0 ||
		c.SessionAbortRate > 0 || c.GrantDenialRate > 0 ||
		c.GetTimeoutRate > 0 || c.DeviceFailRate > 0 ||
		c.PowerCutAfter > 0 || c.TornWriteRate > 0 || c.LogCorruptRate > 0
}

func (c *Config) fill() {
	if c.LatencySpike == 0 {
		c.LatencySpike = 250_000 // 250µs: a read-retry ladder walk
	}
	if c.DMAStall == 0 {
		c.DMAStall = 100_000 // 100µs: bus arbitration stall
	}
	if c.GetTimeout == 0 {
		c.GetTimeout = 10_000_000 // 10ms: watchdog period
	}
}

// Injection sites. Each constant keys an independent draw stream.
const (
	siteRead int64 = iota + 1
	siteUncorrectable
	siteProgram
	siteErase
	siteLatency
	siteDMA
	siteAbort
	siteGrant
	siteTimeout
	siteDeviceFail
	sitePowerCut
	siteTorn
	siteTornLen
	siteCorrupt
	siteCorruptPos
)

// Stats counts injected faults by site. Counters record injections at
// the point of the draw; recovery actions (retries that succeeded,
// remaps, fallbacks) are counted by the layer that performs them.
type Stats struct {
	ReadErrors     int64 // transient read errors injected
	Uncorrectables int64 // uncorrectable read outcomes injected
	ProgramFails   int64 // program failures injected
	EraseFails     int64 // erase failures injected
	LatencySpikes  int64 // controller latency spikes injected
	DMAStalls      int64 // DMA bus stalls injected
	SessionAborts  int64 // sessions aborted mid-GET
	GrantDenials   int64 // OPEN memory grants denied
	GetTimeouts    int64 // GETs hung until timeout
	DeviceFailures int64 // whole-device failures
	SpikeDelay     int64 // total simulated ns added by spikes
	StallDelay     int64 // total simulated ns added by stalls
	TimeoutDelay   int64 // total simulated ns hosts spent waiting on hung GETs
	PowerCuts      int64 // power-cut faults fired mid-write
	TornWrites     int64 // WAL page writes torn to a prefix
	LogCorruptions int64 // WAL record bytes flipped pre-checksum
	StickyBadPages int64 // pages currently marked uncorrectable
	DeviceDead     bool  // device has failed and stays failed
	PowerLost      bool  // power is out; durable writes are refused
}

// Injector draws faults deterministically. The zero of *Injector (nil)
// is a valid, permanently disabled injector. Methods are safe for
// concurrent use; the simulator itself is single-threaded per device,
// but tests exercise injectors under -race.
type Injector struct {
	cfg Config

	mu        sync.Mutex
	counters  map[int64]uint64 // per-site draw counters
	sticky    map[uint64]bool  // pages that failed uncorrectably
	dead      bool
	powerLost bool
	stats     Stats
}

// New returns an injector for cfg, or nil when cfg injects nothing.
// A nil injector is valid at every call site and costs one nil check.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	cfg.fill()
	return &Injector{
		cfg:      cfg,
		counters: make(map[int64]uint64),
		sticky:   make(map[uint64]bool),
	}
}

// Clone returns an injector with an identical configuration and an
// identical position in every per-site draw stream, so a cloned device
// observes exactly the fault sequence the original would have. The
// clone shares nothing with the receiver; a nil receiver clones to nil.
func (i *Injector) Clone() *Injector {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	c := &Injector{
		cfg:       i.cfg,
		counters:  make(map[int64]uint64, len(i.counters)),
		sticky:    make(map[uint64]bool, len(i.sticky)),
		dead:      i.dead,
		powerLost: i.powerLost,
		stats:     i.stats,
	}
	for site, n := range i.counters {
		c.counters[site] = n
	}
	for ppa, bad := range i.sticky {
		c.sticky[ppa] = bad
	}
	return c
}

// Snapshot is a frozen copy of an injector's mutable state: per-site
// draw positions, sticky bad pages, device/power flags, and stats.
// Restoring it rewinds the injector to exactly that point, so a reused
// engine replays the identical fault schedule a fresh clone would.
type Snapshot struct {
	counters  map[int64]uint64
	sticky    map[uint64]bool
	dead      bool
	powerLost bool
	stats     Stats
}

// Snapshot captures the injector's current stream positions and state.
// A nil receiver snapshots to nil.
func (i *Injector) Snapshot() *Snapshot {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	s := &Snapshot{
		counters:  make(map[int64]uint64, len(i.counters)),
		sticky:    make(map[uint64]bool, len(i.sticky)),
		dead:      i.dead,
		powerLost: i.powerLost,
		stats:     i.stats,
	}
	for site, n := range i.counters {
		s.counters[site] = n
	}
	for ppa, bad := range i.sticky {
		s.sticky[ppa] = bad
	}
	return s
}

// Restore rewinds the injector to a state previously captured with
// Snapshot. Both a nil receiver and a nil snapshot are no-ops (a nil
// injector only ever snapshots to nil).
func (i *Injector) Restore(s *Snapshot) {
	if i == nil || s == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.counters = make(map[int64]uint64, len(s.counters))
	for site, n := range s.counters {
		i.counters[site] = n
	}
	i.sticky = make(map[uint64]bool, len(s.sticky))
	for ppa, bad := range s.sticky {
		i.sticky[ppa] = bad
	}
	i.dead = s.dead
	i.powerLost = s.powerLost
	i.stats = s.stats
}

// splitmix64 is the finalizer from Vigna's SplitMix64 generator: a
// bijective avalanche mix whose low bits pass statistical tests, used
// here as a counter-based PRNG (hash of seed ^ site-keyed counter).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll draws the next value in site's stream and reports whether it
// lands under rate. Caller must hold i.mu.
func (i *Injector) roll(site int64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	n := i.counters[site]
	i.counters[site] = n + 1
	h := splitmix64(uint64(i.cfg.Seed) ^ uint64(site)<<56 ^ n)
	// 53 bits of mantissa → uniform in [0,1).
	u := float64(h>>11) / (1 << 53)
	return u < rate
}

// ReadError reports whether the read of page ppa suffers a bit error,
// and if so whether it is uncorrectable. Uncorrectable outcomes are
// sticky: every later read of the same page fails the same way, which
// models genuine data loss rather than a transient glitch.
func (i *Injector) ReadError(ppa uint64) (fail, uncorrectable bool) {
	if i == nil {
		return false, false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.sticky[ppa] {
		return true, true
	}
	if !i.roll(siteRead, i.cfg.ReadErrorRate) {
		return false, false
	}
	i.stats.ReadErrors++
	if i.roll(siteUncorrectable, i.cfg.UncorrectableRate) {
		i.stats.Uncorrectables++
		i.sticky[ppa] = true
		i.stats.StickyBadPages = int64(len(i.sticky))
		return true, true
	}
	return true, false
}

// ProgramFail reports whether the next page program fails.
func (i *Injector) ProgramFail() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.roll(siteProgram, i.cfg.ProgramFailRate) {
		i.stats.ProgramFails++
		return true
	}
	return false
}

// EraseFail reports whether the next block erase fails, retiring the
// block as grown-bad.
func (i *Injector) EraseFail() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.roll(siteErase, i.cfg.EraseFailRate) {
		i.stats.EraseFails++
		return true
	}
	return false
}

// LatencySpike returns the extra simulated nanoseconds the next flash
// operation is delayed by, zero for no spike.
func (i *Injector) LatencySpike() int64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.roll(siteLatency, i.cfg.LatencySpikeRate) {
		i.stats.LatencySpikes++
		i.stats.SpikeDelay += i.cfg.LatencySpike
		return i.cfg.LatencySpike
	}
	return 0
}

// DMAStall returns the extra simulated nanoseconds the next DMA
// transfer waits before starting, zero for no stall.
func (i *Injector) DMAStall() int64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.roll(siteDMA, i.cfg.DMAStallRate) {
		i.stats.DMAStalls++
		i.stats.StallDelay += i.cfg.DMAStall
		return i.cfg.DMAStall
	}
	return 0
}

// SessionAbort reports whether the session servicing the next GET
// aborts mid-flight.
func (i *Injector) SessionAbort() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.roll(siteAbort, i.cfg.SessionAbortRate) {
		i.stats.SessionAborts++
		return true
	}
	return false
}

// GrantDenied reports whether the next OPEN is refused its memory
// grant even though capacity exists.
func (i *Injector) GrantDenied() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.roll(siteGrant, i.cfg.GrantDenialRate) {
		i.stats.GrantDenials++
		return true
	}
	return false
}

// GetTimeout returns the simulated nanoseconds the host waits before
// declaring the next GET hung, zero for no hang.
func (i *Injector) GetTimeout() int64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.roll(siteTimeout, i.cfg.GetTimeoutRate) {
		i.stats.GetTimeouts++
		i.stats.TimeoutDelay += i.cfg.GetTimeout
		return i.cfg.GetTimeout
	}
	return 0
}

// DeviceFail draws whole-device failure at OPEN. Once a device fails
// it stays failed: every later draw reports dead without consuming a
// stream value.
func (i *Injector) DeviceFail() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.dead {
		return true
	}
	if i.roll(siteDeviceFail, i.cfg.DeviceFailRate) {
		i.dead = true
		i.stats.DeviceFailures++
		i.stats.DeviceDead = true
		return true
	}
	return false
}

// KillDevice forces the device into the failed state, as if a
// DeviceFail draw had fired. Used by tests and cluster experiments to
// fail a specific device at a specific point.
func (i *Injector) KillDevice() {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if !i.dead {
		i.dead = true
		i.stats.DeviceFailures++
		i.stats.DeviceDead = true
	}
}

// ReviveDevice clears the failed state (tests only; real grown-bad
// devices stay dead).
func (i *Injector) ReviveDevice() {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.dead = false
	i.stats.DeviceDead = false
}

// Dead reports whether the device has failed.
func (i *Injector) Dead() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.dead
}

// MarkUncorrectable makes every future read of ppa fail
// uncorrectably, bypassing the random streams.
func (i *Injector) MarkUncorrectable(ppa uint64) {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.sticky[ppa] = true
	i.stats.StickyBadPages = int64(len(i.sticky))
}

// ClearUncorrectable forgets a sticky page (the FTL calls this when it
// rewrites the logical data elsewhere, retiring the damaged copy).
func (i *Injector) ClearUncorrectable(ppa uint64) {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	delete(i.sticky, ppa)
	i.stats.StickyBadPages = int64(len(i.sticky))
}

// Stats returns a snapshot of the injection counters.
func (i *Injector) Stats() Stats {
	if i == nil {
		return Stats{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stats
}
