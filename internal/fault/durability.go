package fault

// Durability fault injection: power cuts, torn WAL page writes, and
// log-record corruption. These sites model the crash-consistency
// hazards the write path must survive — the WAL layer consults them on
// every durable write, and the recovery property tests sweep
// PowerCutAfter across every write point of a recorded run.

// WALFault describes what happens to one WAL page write.
type WALFault struct {
	// Lost reports that power is already out: the write must be
	// refused without touching media.
	Lost bool
	// Cut reports that power fails during this write: at most
	// KeepBytes of the page reach media, and every later durable
	// write is refused until RestorePower.
	Cut bool
	// Torn reports a silent partial write: KeepBytes of the page
	// persist, the rest do not, and no error is surfaced — recovery
	// must detect it from the page checksum.
	Torn bool
	// KeepBytes is the persisted prefix length when Cut or Torn.
	KeepBytes int
	// CorruptAt, when >= 0, is the page offset of one byte to flip
	// BEFORE the page checksum seals — the page CRC then passes but
	// the record CRC underneath it fails, modeling in-flash bit rot.
	CorruptAt int
}

// drawU64 draws the next raw 64-bit value in site's stream. Caller
// must hold i.mu.
func (i *Injector) drawU64(site int64) uint64 {
	n := i.counters[site]
	i.counters[site] = n + 1
	return splitmix64(uint64(i.cfg.Seed) ^ uint64(site)<<56 ^ n)
}

// cutDraw advances the shared guarded-write counter and reports
// whether the power cut lands on this write. The counter is consumed
// only when a cut point is configured, so fault-free runs stay
// byte-identical. Caller must hold i.mu.
func (i *Injector) cutDraw() bool {
	if i.cfg.PowerCutAfter <= 0 {
		return false
	}
	n := i.counters[sitePowerCut]
	i.counters[sitePowerCut] = n + 1
	return int64(n)+1 == i.cfg.PowerCutAfter
}

// WALPageWrite draws the fate of one WAL page write of pageSize bytes.
// The draw order is fixed (cut, then torn, then corrupt) so a given
// seed yields the same schedule regardless of which rates are enabled.
func (i *Injector) WALPageWrite(pageSize int) WALFault {
	f := WALFault{CorruptAt: -1}
	if i == nil {
		return f
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.powerLost {
		f.Lost = true
		return f
	}
	if i.cutDraw() {
		i.powerLost = true
		i.stats.PowerCuts++
		i.stats.PowerLost = true
		f.Cut = true
		f.KeepBytes = int(i.drawU64(siteTornLen) % uint64(pageSize))
		return f
	}
	if i.roll(siteTorn, i.cfg.TornWriteRate) {
		i.stats.TornWrites++
		f.Torn = true
		f.KeepBytes = int(i.drawU64(siteTornLen) % uint64(pageSize))
	}
	if i.roll(siteCorrupt, i.cfg.LogCorruptRate) {
		i.stats.LogCorruptions++
		f.CorruptAt = int(i.drawU64(siteCorruptPos) % uint64(pageSize))
	}
	return f
}

// GuardedWrite draws the fate of one guarded data-page write (buffer
// pool flushes, replicated cluster applies). It shares the power-cut
// counter with WALPageWrite, so a cut-point sweep covers crashes
// mid-log and mid-apply alike. cut reports that power fails during
// this write (the page must not reach media); lost reports that power
// was already out.
func (i *Injector) GuardedWrite() (cut, lost bool) {
	if i == nil {
		return false, false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.powerLost {
		return false, true
	}
	if i.cutDraw() {
		i.powerLost = true
		i.stats.PowerCuts++
		i.stats.PowerLost = true
		return true, false
	}
	return false, false
}

// PowerLost reports whether a power-cut fault has fired and power has
// not been restored.
func (i *Injector) PowerLost() bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.powerLost
}

// RestorePower models plugging the machine back in before recovery:
// durable writes are accepted again. The guarded-write counter is NOT
// reset, so a restored run draws no second cut at the same point.
func (i *Injector) RestorePower() {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.powerLost = false
	i.stats.PowerLost = false
}
