// Quickstart: build a simulated Smart SSD system, load a table, and
// run the same selective query on the host path and pushed down into
// the device, comparing time and energy.
package main

import (
	"fmt"
	"log"

	"smartssd"
)

func main() {
	// A zero Config reproduces the paper's testbed: a SAS 6Gb/s Smart
	// SSD with 1,560 MB/s internal bandwidth and a 3x400 MHz embedded
	// CPU, behind a 2 GHz 8-core host idling at 235 W.
	sys, err := smartssd.New(smartssd.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// An orders table in PAX layout (column-grouped pages, the layout
	// the paper's Smart SSD prefers).
	orders := smartssd.NewSchema(
		smartssd.Column{Name: "o_id", Kind: smartssd.Int64},
		smartssd.Column{Name: "o_total", Kind: smartssd.Int64},
		smartssd.Column{Name: "o_status", Kind: smartssd.Int32},
		smartssd.Column{Name: "o_note", Kind: smartssd.Char, Len: 120},
	)
	if _, err := sys.CreateTable("orders", orders, smartssd.PAX, 4096, smartssd.OnSSD); err != nil {
		log.Fatal(err)
	}

	// Load 200k synthetic orders; about 1% have status 7.
	const n = 200_000
	i := int64(0)
	err = sys.Load("orders", func() (smartssd.Tuple, bool) {
		if i >= n {
			return nil, false
		}
		t := smartssd.Tuple{
			smartssd.IntVal(i),
			smartssd.IntVal(1000 + i%9000),
			smartssd.IntVal(i % 100),
			smartssd.StrVal("synthetic order"),
		}
		i++
		return t, true
	})
	if err != nil {
		log.Fatal(err)
	}

	// SELECT SUM(o_total), COUNT(*) FROM orders WHERE o_status = 7.
	query := smartssd.QuerySpec{
		Table:  "orders",
		Filter: smartssd.EQ(smartssd.ColOf(orders, "o_status"), smartssd.Int(7)),
		Aggs: []smartssd.AggSpec{
			{Kind: smartssd.Sum, E: smartssd.ColOf(orders, "o_total"), Name: "sum_total"},
			{Kind: smartssd.Count, Name: "cnt"},
		},
		EstSelectivity: 0.01,
	}

	for _, mode := range []smartssd.Mode{smartssd.ForceHost, smartssd.ForceDevice, smartssd.Auto} {
		res, err := sys.Run(query, mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7v -> ran on %-6v  elapsed %8.4fs  energy %7.4f kJ  bottleneck %-11s  sum=%d cnt=%d\n",
			mode, res.Placement, res.Elapsed.Seconds(), res.Energy.SystemkJ(),
			res.Bottleneck, res.Rows[0][0].Int, res.Rows[0][1].Int)
	}

	// The planner's reasoning, on request.
	explain, err := sys.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n" + explain)
}
