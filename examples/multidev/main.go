// Multidev demonstrates the end of the paper's §4.3 design spectrum:
// the host as a pure coordinator staging computation across an array of
// Smart SSDs, "making the system look like a parallel DBMS with the
// master node being the host server, and the worker nodes ... being the
// Smart SSDs".
//
// A fact table is partitioned round-robin across N simulated devices, a
// small dimension table is replicated to each, and a filtered
// join-aggregate runs as one in-device program per worker with the host
// merging partial aggregates.
package main

import (
	"flag"
	"fmt"
	"log"

	"smartssd"
)

func main() {
	workers := flag.Int("devices", 4, "number of Smart SSD workers")
	nRows := flag.Int64("rows", 200_000, "fact-table rows")
	flag.Parse()

	fact := smartssd.NewSchema(
		smartssd.Column{Name: "f_id", Kind: smartssd.Int64},
		smartssd.Column{Name: "f_dim", Kind: smartssd.Int32},
		smartssd.Column{Name: "f_val", Kind: smartssd.Int32},
		smartssd.Column{Name: "f_pad", Kind: smartssd.Char, Len: 140},
	)
	dim := smartssd.NewSchema(
		smartssd.Column{Name: "d_key", Kind: smartssd.Int32},
		smartssd.Column{Name: "d_weight", Kind: smartssd.Int32},
	)

	genFact := func() func() (smartssd.Tuple, bool) {
		i := int64(0)
		return func() (smartssd.Tuple, bool) {
			if i >= *nRows {
				return nil, false
			}
			t := smartssd.Tuple{
				smartssd.IntVal(i),
				smartssd.IntVal(i % 64),
				smartssd.IntVal(i % 100),
				smartssd.StrVal("fact"),
			}
			i++
			return t, true
		}
	}
	genDim := func() func() (smartssd.Tuple, bool) {
		j := int64(0)
		return func() (smartssd.Tuple, bool) {
			if j >= 64 {
				return nil, false
			}
			t := smartssd.Tuple{smartssd.IntVal(j), smartssd.IntVal(j * 5)}
			j++
			return t, true
		}
	}

	query := smartssd.ClusterQuery{
		Table: "fact",
		Join:  &smartssd.JoinClause{BuildTable: "dim", BuildKey: "d_key", ProbeKey: "f_dim"},
		Filter: smartssd.LT(
			smartssd.ColAt(2, "f_val", smartssd.Int32), smartssd.Int(20)),
		Aggs: []smartssd.AggSpec{
			{Kind: smartssd.Sum, E: smartssd.ColAt(fact.NumColumns()+1, "d_weight", smartssd.Int32), Name: "sum_w"},
			{Kind: smartssd.Count, Name: "cnt"},
		},
	}

	fmt.Printf("%-9s %12s %14s %10s\n", "devices", "elapsed", "scale-up", "answer")
	var base float64
	for _, n := range []int{1, 2, *workers} {
		cl, err := smartssd.NewCluster(n, smartssd.DefaultSSDParams())
		if err != nil {
			log.Fatal(err)
		}
		if err := cl.CreateTable("fact", fact, smartssd.PAX, *nRows/40+2); err != nil {
			log.Fatal(err)
		}
		if err := cl.Load("fact", genFact()); err != nil {
			log.Fatal(err)
		}
		if err := cl.CreateTable("dim", dim, smartssd.NSM, 4); err != nil {
			log.Fatal(err)
		}
		if err := cl.Replicate("dim", genDim); err != nil {
			log.Fatal(err)
		}
		res, err := cl.Run(query)
		if err != nil {
			log.Fatal(err)
		}
		el := res.Elapsed.Seconds()
		if n == 1 {
			base = el
		}
		fmt.Printf("%-9d %11.4fs %13.2fx   sum=%d cnt=%d\n",
			n, el, base/el, res.Rows[0][0].Int, res.Rows[0][1].Int)
	}
	fmt.Println("\nEach worker scans only its partition at internal bandwidth; the host")
	fmt.Println("merges one partial aggregate per device - near-linear scale-up.")
}
