// Tpch runs the paper's two TPC-H experiments end to end through the
// public API: Q6 (single-table scan with aggregation, Figure 3) and
// Q14 (selection + simple hash join + aggregation, Figure 7), each on
// the regular host path and pushed into the Smart SSD with both NSM
// and PAX layouts.
package main

import (
	"flag"
	"fmt"
	"log"

	"smartssd"
	"smartssd/workload"
)

func main() {
	sf := flag.Float64("sf", 0.02, "TPC-H scale factor (paper: 100)")
	flag.Parse()

	sys, err := smartssd.New(smartssd.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// LINEITEM and PART in both layouts on the Smart SSD.
	li := workload.LineitemSchema()
	pa := workload.PartSchema()
	liPages := workload.NumLineitem(*sf)/51 + 2
	paPages := workload.NumPart(*sf)/40 + 2
	for _, l := range []struct {
		suffix string
		layout smartssd.Layout
	}{{"nsm", smartssd.NSM}, {"pax", smartssd.PAX}} {
		must(sys.CreateTable("lineitem_"+l.suffix, li, l.layout, liPages, smartssd.OnSSD))
		if err := sys.Load("lineitem_"+l.suffix, workload.LineitemGen(*sf, 1)); err != nil {
			log.Fatal(err)
		}
		must(sys.CreateTable("part_"+l.suffix, pa, l.layout, paPages, smartssd.OnSSD))
		if err := sys.Load("part_"+l.suffix, workload.PartGen(*sf, 2)); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("TPC-H SF %.2f: %d LINEITEM rows, %d PART rows\n\n",
		*sf, workload.NumLineitem(*sf), workload.NumPart(*sf))

	// --- Q6 (Figure 3) ---
	q6 := func(table string) smartssd.QuerySpec {
		return smartssd.QuerySpec{
			Table:          table,
			Filter:         workload.Q6Predicate(),
			Aggs:           workload.Q6Aggregates(),
			EstSelectivity: workload.Q6EstSelectivity,
		}
	}
	fmt.Println("Q6: SELECT SUM(l_extendedprice*l_discount) ... (Figure 3)")
	base := run(sys, "SAS SSD (host)", q6("lineitem_nsm"), smartssd.ForceHost, 0)
	run(sys, "Smart SSD (NSM)", q6("lineitem_nsm"), smartssd.ForceDevice, base)
	run(sys, "Smart SSD (PAX)", q6("lineitem_pax"), smartssd.ForceDevice, base)

	// --- Q14 (Figure 7) ---
	q14 := func(suffix string) smartssd.QuerySpec {
		return smartssd.QuerySpec{
			Table:          "lineitem_" + suffix,
			Join:           &smartssd.JoinClause{BuildTable: "part_" + suffix, BuildKey: "p_partkey", ProbeKey: "l_partkey"},
			Filter:         workload.Q14DateRange(),
			Aggs:           workload.Q14Aggregates(),
			EstSelectivity: workload.Q14EstSelectivity,
		}
	}
	fmt.Println("\nQ14: promo revenue percentage via LINEITEM x PART (Figure 7)")
	base = run(sys, "SAS SSD (host)", q14("nsm"), smartssd.ForceHost, 0)
	run(sys, "Smart SSD (NSM)", q14("nsm"), smartssd.ForceDevice, base)
	res := runResult(sys, q14("pax"), smartssd.ForceDevice)
	report("Smart SSD (PAX)", res, base)
	fmt.Printf("\nQ14 answer: promo_revenue = %.2f%%\n",
		workload.Q14PromoPercent(res.Rows[0][0].Int, res.Rows[0][1].Int))
}

func run(sys *smartssd.System, name string, q smartssd.QuerySpec, mode smartssd.Mode, base float64) float64 {
	res := runResult(sys, q, mode)
	report(name, res, base)
	return res.Elapsed.Seconds()
}

func runResult(sys *smartssd.System, q smartssd.QuerySpec, mode smartssd.Mode) *smartssd.Result {
	res, err := sys.Run(q, mode)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func report(name string, res *smartssd.Result, base float64) {
	speed := 1.0
	if base > 0 {
		speed = base / res.Elapsed.Seconds()
	}
	fmt.Printf("  %-17s %9.4fs  %5.2fx  bottleneck %-11s  energy %.4f kJ\n",
		name, res.Elapsed.Seconds(), speed, res.Bottleneck, res.Energy.SystemkJ())
}

func must(_ interface{}, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
