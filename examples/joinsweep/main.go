// Joinsweep reproduces the Figure 5 experiment through the public API:
// the Synthetic64 selection-with-join query swept across selectivity
// factors, showing the Smart SSD's advantage collapsing as the result
// volume (and its per-row staging cost) grows.
package main

import (
	"flag"
	"fmt"
	"log"

	"smartssd"
	"smartssd/workload"
)

func main() {
	nR := flag.Int64("r", 1000, "Synthetic64_R rows (paper: 1,000,000; S is 400x)")
	flag.Parse()
	nS := *nR * workload.SyntheticSRatio

	sys, err := smartssd.New(smartssd.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rs := workload.SyntheticSchema("r")
	ss := workload.SyntheticSchema("s")
	if _, err := sys.CreateTable("r", rs, smartssd.PAX, *nR/28+2, smartssd.OnSSD); err != nil {
		log.Fatal(err)
	}
	if err := sys.Load("r", workload.SyntheticRGen(*nR, 1)); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.CreateTable("s", ss, smartssd.PAX, nS/28+2, smartssd.OnSSD); err != nil {
		log.Fatal(err)
	}
	if err := sys.Load("s", workload.SyntheticSGen(nS, *nR, 2)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Synthetic64: |R| = %d, |S| = %d (PAX layout)\n\n", *nR, nS)
	fmt.Printf("%-6s %12s %12s %9s %12s\n", "sel%", "host", "device", "speedup", "result rows")

	for _, sel := range []int64{1, 10, 25, 50, 75, 100} {
		q := smartssd.QuerySpec{
			Table:          "s",
			Join:           &smartssd.JoinClause{BuildTable: "r", BuildKey: "r_col_1", ProbeKey: "s_col_2"},
			Filter:         workload.SyntheticSelection(sel),
			Output:         workload.SyntheticJoinOutput(),
			EstSelectivity: float64(sel) / 100,
		}
		host, err := sys.Run(q, smartssd.ForceHost)
		if err != nil {
			log.Fatal(err)
		}
		dev, err := sys.Run(q, smartssd.ForceDevice)
		if err != nil {
			log.Fatal(err)
		}
		if len(host.Rows) != len(dev.Rows) {
			log.Fatalf("row count mismatch at sel=%d: host %d, device %d", sel, len(host.Rows), len(dev.Rows))
		}
		fmt.Printf("%-6d %11.4fs %11.4fs %8.2fx %12d\n",
			sel, host.Elapsed.Seconds(), dev.Elapsed.Seconds(),
			host.Elapsed.Seconds()/dev.Elapsed.Seconds(), len(dev.Rows))
	}

	fmt.Println("\nAt low selectivity the device ships few rows and wins on internal")
	fmt.Println("bandwidth; at 100% the result staging and transfer dominate and the")
	fmt.Println("advantage disappears - the Figure 5 shape.")
}
