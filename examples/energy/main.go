// Energy reproduces the Table 3 experiment through the public API:
// TPC-H Q6 on the SAS HDD, the regular SSD path, and the Smart SSD with
// NSM and PAX layouts, with whole-system and I/O-subsystem energy
// integrated over each run's simulated timeline.
package main

import (
	"flag"
	"fmt"
	"log"

	"smartssd"
	"smartssd/workload"
)

func main() {
	sf := flag.Float64("sf", 0.02, "TPC-H scale factor (paper: 100)")
	flag.Parse()

	sys, err := smartssd.New(smartssd.Config{})
	if err != nil {
		log.Fatal(err)
	}
	li := workload.LineitemSchema()
	pages := workload.NumLineitem(*sf)/51 + 2
	type placement struct {
		name   string
		layout smartssd.Layout
		target smartssd.Target
	}
	for _, p := range []placement{
		{"lineitem_hdd", smartssd.NSM, smartssd.OnHDD},
		{"lineitem_nsm", smartssd.NSM, smartssd.OnSSD},
		{"lineitem_pax", smartssd.PAX, smartssd.OnSSD},
	} {
		if _, err := sys.CreateTable(p.name, li, p.layout, pages, p.target); err != nil {
			log.Fatal(err)
		}
		if err := sys.Load(p.name, workload.LineitemGen(*sf, 1)); err != nil {
			log.Fatal(err)
		}
	}

	q := func(table string) smartssd.QuerySpec {
		return smartssd.QuerySpec{
			Table:          table,
			Filter:         workload.Q6Predicate(),
			Aggs:           workload.Q6Aggregates(),
			EstSelectivity: workload.Q6EstSelectivity,
		}
	}
	configs := []struct {
		name  string
		table string
		mode  smartssd.Mode
	}{
		{"SAS HDD", "lineitem_hdd", smartssd.ForceHost},
		{"SAS SSD", "lineitem_nsm", smartssd.ForceHost},
		{"Smart SSD (NSM)", "lineitem_nsm", smartssd.ForceDevice},
		{"Smart SSD (PAX)", "lineitem_pax", smartssd.ForceDevice},
	}

	fmt.Printf("TPC-H Q6 at SF %.2f - energy comparison (Table 3)\n\n", *sf)
	fmt.Printf("%-18s %12s %14s %16s %14s\n", "", "elapsed", "system (kJ)", "I/O subsys (kJ)", "above idle (kJ)")
	var results []*smartssd.Result
	for _, c := range configs {
		res, err := sys.Run(q(c.table), c.mode)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
		fmt.Printf("%-18s %11.3fs %14.4f %16.5f %14.4f\n",
			c.name, res.Elapsed.Seconds(), res.Energy.SystemkJ(), res.Energy.IOkJ(),
			res.Energy.AboveIdleJ/1000)
	}

	pax := results[3]
	fmt.Printf("\nversus Smart SSD (PAX):\n")
	fmt.Printf("  HDD: %.1fx system energy, %.1fx I/O energy (paper: 11.6x / 14.3x)\n",
		results[0].Energy.SystemJ/pax.Energy.SystemJ, results[0].Energy.IOJ/pax.Energy.IOJ)
	fmt.Printf("  SSD: %.1fx system energy, %.1fx I/O energy (paper: 1.9x / 1.4x)\n",
		results[1].Energy.SystemJ/pax.Energy.SystemJ, results[1].Energy.IOJ/pax.Energy.IOJ)
	fmt.Printf("  above the 235 W idle floor: HDD %.1fx, SSD %.1fx (paper: 12.4x / 2.3x)\n",
		results[0].Energy.AboveIdleJ/pax.Energy.AboveIdleJ,
		results[1].Energy.AboveIdleJ/pax.Energy.AboveIdleJ)
}
