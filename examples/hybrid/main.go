// Hybrid demonstrates partial pushdown (§4.3: "we may still want to
// process ... part of the query inside the Smart SSD"): the planner
// splits TPC-H Q6's scan between the device program and the host path,
// both run concurrently over the shared flash, and the host merges the
// partial aggregates — beating both pure modes.
package main

import (
	"flag"
	"fmt"
	"log"

	"smartssd"
	"smartssd/workload"
)

func main() {
	sf := flag.Float64("sf", 0.02, "TPC-H scale factor")
	flag.Parse()

	sys, err := smartssd.New(smartssd.Config{})
	if err != nil {
		log.Fatal(err)
	}
	li := workload.LineitemSchema()
	if _, err := sys.CreateTable("lineitem", li, smartssd.PAX,
		workload.NumLineitem(*sf)/51+2, smartssd.OnSSD); err != nil {
		log.Fatal(err)
	}
	if err := sys.Load("lineitem", workload.LineitemGen(*sf, 1)); err != nil {
		log.Fatal(err)
	}
	q := smartssd.QuerySpec{
		Table:          "lineitem",
		Filter:         workload.Q6Predicate(),
		Aggs:           workload.Q6Aggregates(),
		EstSelectivity: workload.Q6EstSelectivity,
	}

	fmt.Println("TPC-H Q6, three execution strategies:")
	fmt.Println()
	var base float64
	for _, m := range []struct {
		name string
		mode smartssd.Mode
	}{
		{"host (the usual way)", smartssd.ForceHost},
		{"device (pure pushdown)", smartssd.ForceDevice},
		{"hybrid (split scan)", smartssd.ForceHybrid},
	} {
		res, err := sys.Run(q, m.mode)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.Elapsed.Seconds()
		}
		fmt.Printf("  %-24s %9.4fs  %5.2fx  bottleneck %-11s",
			m.name, res.Elapsed.Seconds(), base/res.Elapsed.Seconds(), res.Bottleneck)
		if res.Placement == smartssd.RanHybrid {
			fmt.Printf("  (device took %.0f%% of pages)", 100*res.HybridDeviceFraction)
		}
		fmt.Println()
	}

	// The planner can pick the split automatically.
	sys.SetHybridAuto(true)
	res, err := sys.Run(q, smartssd.Auto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nauto (hybrid planning on) chose: %v — %s\n", res.Placement, res.Decision.Reason)
	fmt.Println("\nThe device path is CPU-bound and the host path is link-bound; the")
	fmt.Println("split lets both proceed at once, adding their throughputs until the")
	fmt.Println("shared 1,560 MB/s DMA bus caps the sum.")
}
