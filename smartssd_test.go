// Tests of the public facade, written as an external consumer would use
// it (package smartssd_test) so that the exported surface alone is
// proven sufficient to drive the full system.
package smartssd_test

import (
	"testing"

	"smartssd"
	"smartssd/workload"
)

func buildOrders(t *testing.T) (*smartssd.System, *smartssd.Schema) {
	t.Helper()
	sys, err := smartssd.New(smartssd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	orders := smartssd.NewSchema(
		smartssd.Column{Name: "o_id", Kind: smartssd.Int64},
		smartssd.Column{Name: "o_total", Kind: smartssd.Int64},
		smartssd.Column{Name: "o_status", Kind: smartssd.Int32},
		smartssd.Column{Name: "o_date", Kind: smartssd.Date},
		smartssd.Column{Name: "o_note", Kind: smartssd.Char, Len: 100},
	)
	if _, err := sys.CreateTable("orders", orders, smartssd.PAX, 2048, smartssd.OnSSD); err != nil {
		t.Fatal(err)
	}
	const n = 50_000
	day0 := smartssd.DaysOf(2013, 6, 1)
	i := int64(0)
	err = sys.Load("orders", func() (smartssd.Tuple, bool) {
		if i >= n {
			return nil, false
		}
		tup := smartssd.Tuple{
			smartssd.IntVal(i),
			smartssd.IntVal(100 + i%900),
			smartssd.IntVal(i % 50),
			smartssd.IntVal(day0 + i%365),
			smartssd.StrVal("note"),
		}
		i++
		return tup, true
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, orders
}

func TestPublicAPIEndToEnd(t *testing.T) {
	sys, orders := buildOrders(t)
	q := smartssd.QuerySpec{
		Table: "orders",
		Filter: smartssd.And(
			smartssd.EQ(smartssd.ColOf(orders, "o_status"), smartssd.Int(7)),
			smartssd.GE(smartssd.ColOf(orders, "o_date"), smartssd.DateOf(smartssd.DaysOf(2013, 6, 1))),
		),
		Aggs: []smartssd.AggSpec{
			{Kind: smartssd.Sum, E: smartssd.ColOf(orders, "o_total"), Name: "sum_total"},
			{Kind: smartssd.Count, Name: "cnt"},
			{Kind: smartssd.Max, E: smartssd.ColOf(orders, "o_id"), Name: "max_id"},
		},
		EstSelectivity: 0.02,
	}
	host, err := sys.Run(q, smartssd.ForceHost)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := sys.Run(q, smartssd.ForceDevice)
	if err != nil {
		t.Fatal(err)
	}
	if host.Rows[0][0].Int != dev.Rows[0][0].Int ||
		host.Rows[0][1].Int != dev.Rows[0][1].Int ||
		host.Rows[0][2].Int != dev.Rows[0][2].Int {
		t.Fatalf("host %v != device %v", host.Rows[0], dev.Rows[0])
	}
	// Ground truth: statuses cycle 0..49, so 2% match status 7.
	if got := host.Rows[0][1].Int; got != 1000 {
		t.Fatalf("count = %d, want 1000", got)
	}
	auto, err := sys.Run(q, smartssd.Auto)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Placement != smartssd.RanDevice {
		t.Fatalf("auto placement = %v (%s)", auto.Placement, auto.Decision.Reason)
	}
	if auto.Energy.SystemkJ() <= 0 || auto.Elapsed <= 0 {
		t.Fatal("metrics not populated")
	}
}

func TestPublicExpressionBuilders(t *testing.T) {
	s := smartssd.NewSchema(
		smartssd.Column{Name: "a", Kind: smartssd.Int64},
		smartssd.Column{Name: "txt", Kind: smartssd.Char, Len: 10},
	)
	row := smartssd.Tuple{smartssd.IntVal(6), smartssd.StrVal("PROMO X")}
	eval := func(e smartssd.Expr) int64 {
		return e.Eval(tupleRow(row)).Int
	}
	if eval(smartssd.Add(smartssd.ColOf(s, "a"), smartssd.Int(4))) != 10 {
		t.Error("Add")
	}
	if eval(smartssd.Mul(smartssd.Sub(smartssd.Int(10), smartssd.ColOf(s, "a")), smartssd.Int(3))) != 12 {
		t.Error("Sub/Mul")
	}
	if eval(smartssd.Div(smartssd.Int(7), smartssd.Int(2))) != 3 {
		t.Error("Div")
	}
	if eval(smartssd.Like(smartssd.ColOf(s, "txt"), "PROMO")) != 1 {
		t.Error("Like")
	}
	if eval(smartssd.Case(smartssd.LT(smartssd.ColOf(s, "a"), smartssd.Int(10)), smartssd.Int(1), smartssd.Int(2))) != 1 {
		t.Error("Case")
	}
	if eval(smartssd.Or(smartssd.EQ(smartssd.Int(1), smartssd.Int(2)), smartssd.NE(smartssd.Int(1), smartssd.Int(2)))) != 1 {
		t.Error("Or/NE")
	}
	if eval(smartssd.Not(smartssd.LE(smartssd.Int(1), smartssd.Int(2)))) != 0 {
		t.Error("Not/LE")
	}
	if eval(smartssd.GT(smartssd.Int(3), smartssd.Int(2))) != 1 {
		t.Error("GT")
	}
	if eval(smartssd.EQ(smartssd.ColOf(s, "txt"), smartssd.Str("PROMO X"))) != 1 {
		t.Error("Str/EQ")
	}
}

// tupleRow adapts a Tuple for direct expression evaluation in tests.
type tupleRowT smartssd.Tuple

func (r tupleRowT) Col(i int) smartssd.Value { return r[i] }

func tupleRow(t smartssd.Tuple) tupleRowT { return tupleRowT(t) }

func TestWorkloadPackageThroughPublicAPI(t *testing.T) {
	sys, err := smartssd.New(smartssd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	li := workload.LineitemSchema()
	const sf = 0.005
	pages := workload.NumLineitem(sf)/51 + 2
	if _, err := sys.CreateTable("lineitem", li, smartssd.PAX, pages, smartssd.OnSSD); err != nil {
		t.Fatal(err)
	}
	if err := sys.Load("lineitem", workload.LineitemGen(sf, 1)); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(smartssd.QuerySpec{
		Table:          "lineitem",
		Filter:         workload.Q6Predicate(),
		Aggs:           workload.Q6Aggregates(),
		EstSelectivity: workload.Q6EstSelectivity,
	}, smartssd.Auto)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int <= 0 {
		t.Fatalf("Q6 via public API = %v", res.Rows)
	}
}

func TestMeasureBandwidthPublic(t *testing.T) {
	sys, err := smartssd.New(smartssd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	internal, host, err := smartssd.MeasureBandwidth(sys.SSD())
	if err != nil {
		t.Fatal(err)
	}
	if ratio := internal / host; ratio < 2.6 || ratio > 3.0 {
		t.Fatalf("bandwidth ratio = %.2f, want about 2.8", ratio)
	}
}

func TestBandwidthTrendPublic(t *testing.T) {
	tr := smartssd.BandwidthTrend()
	if len(tr) == 0 || tr[0].Year != 2007 {
		t.Fatalf("trend = %v", tr)
	}
}

func TestClusterPublic(t *testing.T) {
	cl, err := smartssd.NewCluster(3, smartssd.DefaultSSDParams())
	if err != nil {
		t.Fatal(err)
	}
	if cl.Devices() != 3 {
		t.Fatalf("Devices = %d", cl.Devices())
	}
	s := smartssd.NewSchema(
		smartssd.Column{Name: "k", Kind: smartssd.Int64},
		smartssd.Column{Name: "v", Kind: smartssd.Int32},
		smartssd.Column{Name: "pad", Kind: smartssd.Char, Len: 120},
	)
	if err := cl.CreateTable("t", s, smartssd.PAX, 512); err != nil {
		t.Fatal(err)
	}
	const n = 9000
	i := int64(0)
	err = cl.Load("t", func() (smartssd.Tuple, bool) {
		if i >= n {
			return nil, false
		}
		tup := smartssd.Tuple{smartssd.IntVal(i), smartssd.IntVal(i % 10), smartssd.StrVal("x")}
		i++
		return tup, true
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(smartssd.ClusterQuery{
		Table:  "t",
		Filter: smartssd.LT(smartssd.ColOf(s, "v"), smartssd.Int(5)),
		Aggs:   []smartssd.AggSpec{{Kind: smartssd.Count, Name: "c"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != n/2 {
		t.Fatalf("cluster count = %d, want %d", res.Rows[0][0].Int, n/2)
	}
}
