module smartssd

go 1.22
