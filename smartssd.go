// Package smartssd is a full-system simulator and query-processing
// library reproducing "Query Processing on Smart SSDs: Opportunities
// and Challenges" (Do, Kee, Patel, Park, Park, DeWitt; SIGMOD 2013).
//
// A System bundles a simulated Smart SSD (NAND array, FTL, flash
// channels, shared DMA bus, embedded CPU, SAS host link), a baseline
// HDD, a host query executor with a buffer pool, and a cost-based
// planner that decides — per query — whether to process data the usual
// way on the host or to push scans, selections, aggregations, and
// simple hash joins into the device through the paper's OPEN/GET/CLOSE
// session protocol. Every run returns bit-exact query results together
// with simulated elapsed time, per-resource bottleneck, data traffic,
// and whole-system/I/O-subsystem energy.
//
// Quick start:
//
//	sys, _ := smartssd.New(smartssd.Config{})
//	tbl := smartssd.NewSchema(
//		smartssd.Column{Name: "id", Kind: smartssd.Int64},
//		smartssd.Column{Name: "val", Kind: smartssd.Int32},
//	)
//	sys.CreateTable("t", tbl, smartssd.PAX, 4096, smartssd.OnSSD)
//	sys.Load("t", gen)
//	res, _ := sys.Run(smartssd.QuerySpec{
//		Table:  "t",
//		Filter: smartssd.LT(smartssd.ColOf(tbl, "val"), smartssd.Int(10)),
//		Aggs:   []smartssd.AggSpec{{Kind: smartssd.Sum, E: smartssd.ColOf(tbl, "id"), Name: "s"}},
//	}, smartssd.Auto)
//	fmt.Println(res.Rows, res.Elapsed, res.Energy.SystemkJ())
//
// See the examples directory for complete programs, including the
// paper's TPC-H Q6/Q14 and Synthetic64 join experiments (package
// workload generates those datasets).
package smartssd

import (
	"io"
	"time"

	"smartssd/internal/core"
	"smartssd/internal/device"
	"smartssd/internal/energy"
	"smartssd/internal/expr"
	"smartssd/internal/fault"
	"smartssd/internal/hdd"
	"smartssd/internal/hostif"
	"smartssd/internal/metrics"
	"smartssd/internal/nand"
	"smartssd/internal/page"
	"smartssd/internal/plan"
	"smartssd/internal/schema"
	"smartssd/internal/sim"
	"smartssd/internal/ssd"
	"smartssd/internal/trace"
)

// System is the integrated engine: devices, host executor, buffer
// pool, Smart SSD runtime, planner, and catalog.
type System = core.Engine

// Config assembles a System; the zero value reproduces the paper's
// testbed (Samsung-class Smart SSD, 10K RPM SAS HDD, 2 GHz 8-core host).
type Config = core.Config

// New builds a System.
func New(cfg Config) (*System, error) { return core.New(cfg) }

// Table placement and execution-mode selectors.
type (
	// Target selects the device a table lives on.
	Target = core.Target
	// Mode selects where a query executes.
	Mode = core.Mode
	// Placement reports where a run actually executed.
	Placement = core.Placement
)

// Placement targets and execution modes.
const (
	OnSSD = core.OnSSD
	OnHDD = core.OnHDD

	Auto        = core.Auto
	ForceHost   = core.ForceHost
	ForceDevice = core.ForceDevice
	ForceHybrid = core.ForceHybrid

	RanHost   = core.RanHost
	RanDevice = core.RanDevice
	RanHybrid = core.RanHybrid
)

// Query construction types.
type (
	// QuerySpec is a query in the paper's supported class.
	QuerySpec = core.QuerySpec
	// JoinClause names a simple hash join.
	JoinClause = core.JoinClause
	// Result is one run's rows plus its complete measurement.
	Result = core.Result
	// OutputCol names one projected expression.
	OutputCol = plan.OutputCol
	// AggSpec is one aggregate output column.
	AggSpec = plan.AggSpec
	// AggKind enumerates aggregate functions.
	AggKind = plan.AggKind
)

// Aggregate functions.
const (
	Sum   = plan.Sum
	Count = plan.Count
	Min   = plan.Min
	Max   = plan.Max
)

// Cluster is the §4.3 extension: a host coordinating an array of Smart
// SSDs like a parallel DBMS.
type (
	Cluster       = core.Cluster
	ClusterQuery  = core.ClusterQuery
	ClusterResult = core.ClusterResult
)

// NewCluster builds n identical Smart SSD workers.
func NewCluster(n int, params SSDParams) (*Cluster, error) {
	return core.NewCluster(n, params, device.DefaultCostModel())
}

// Schema types.
type (
	// Schema describes a table's fixed-width columns.
	Schema = schema.Schema
	// Column describes one column.
	Column = schema.Column
	// Kind enumerates column types.
	Kind = schema.Kind
	// Tuple is one decoded row.
	Tuple = schema.Tuple
	// Value is one column value.
	Value = schema.Value
	// Layout selects the page organization.
	Layout = page.Layout
)

// Column kinds and page layouts.
const (
	Int32 = schema.Int32
	Int64 = schema.Int64
	Date  = schema.Date
	Char  = schema.Char

	NSM = page.NSM
	PAX = page.PAX
)

// NewSchema builds a table schema.
func NewSchema(cols ...Column) *Schema { return schema.New(cols...) }

// IntVal returns a numeric Value.
func IntVal(v int64) Value { return schema.IntVal(v) }

// StrVal returns a CHAR Value.
func StrVal(s string) Value { return schema.StrVal(s) }

// Expression types. Booleans are Int 0/1.
type Expr = expr.Expr

// ColOf references a named column of s.
func ColOf(s *Schema, name string) Expr { return expr.ColRef(s, name) }

// ColAt references column index i (for combined join rows).
func ColAt(i int, name string, k Kind) Expr { return expr.Col{Index: i, Name: name, K: k} }

// Int is an integer literal.
func Int(v int64) Expr { return expr.IntConst(v) }

// Str is a CHAR literal.
func Str(s string) Expr { return expr.StrConst(s) }

// DateOf is a date literal, given a day count since 1970-01-01 (build
// one with DaysOf).
func DateOf(days int64) Expr { return expr.DateConst(days) }

// DaysOf converts a calendar date (UTC) to a day count.
func DaysOf(year, month, day int) int64 {
	return schema.DateVal(year, time.Month(month), day).Days()
}

// Comparison constructors.
func EQ(l, r Expr) Expr { return expr.Cmp{Op: expr.EQ, L: l, R: r} }
func NE(l, r Expr) Expr { return expr.Cmp{Op: expr.NE, L: l, R: r} }
func LT(l, r Expr) Expr { return expr.Cmp{Op: expr.LT, L: l, R: r} }
func LE(l, r Expr) Expr { return expr.Cmp{Op: expr.LE, L: l, R: r} }
func GT(l, r Expr) Expr { return expr.Cmp{Op: expr.GT, L: l, R: r} }
func GE(l, r Expr) Expr { return expr.Cmp{Op: expr.GE, L: l, R: r} }

// Boolean and arithmetic constructors.
func And(terms ...Expr) Expr { return expr.And{Terms: terms} }
func Or(terms ...Expr) Expr  { return expr.Or{Terms: terms} }
func Not(e Expr) Expr        { return expr.Not{E: e} }
func Add(l, r Expr) Expr     { return expr.Arith{Op: expr.Add, L: l, R: r} }
func Sub(l, r Expr) Expr     { return expr.Arith{Op: expr.Sub, L: l, R: r} }
func Mul(l, r Expr) Expr     { return expr.Arith{Op: expr.Mul, L: l, R: r} }
func Div(l, r Expr) Expr     { return expr.Arith{Op: expr.Div, L: l, R: r} }

// Like matches a CHAR expression against a fixed prefix (LIKE 'p%').
func Like(e Expr, prefix string) Expr { return expr.LikePrefix{E: e, Prefix: prefix} }

// Case is CASE WHEN cond THEN then ELSE els END.
func Case(cond, then, els Expr) Expr { return expr.Case{Cond: cond, Then: then, Else: els} }

// Device configuration re-exports, for building non-default systems.
type (
	// SSDParams configures the simulated (Smart) SSD.
	SSDParams = ssd.Params
	// HDDParams configures the baseline disk.
	HDDParams = hdd.Params
	// HostInterface is a host bus interface standard.
	HostInterface = hostif.Interface
	// EnergyProfile holds the testbed power constants.
	EnergyProfile = energy.Profile
	// EnergyBreakdown is one run's integrated energy.
	EnergyBreakdown = energy.Breakdown
	// DeviceCostModel holds the embedded-CPU cost constants.
	DeviceCostModel = device.CostModel
)

// DefaultSSDParams reports the paper's prototype device.
func DefaultSSDParams() SSDParams { return ssd.DefaultParams() }

// DefaultHDDParams reports the paper's baseline drive.
func DefaultHDDParams() HDDParams { return hdd.DefaultParams() }

// DefaultEnergyProfile reports the calibrated testbed power profile.
func DefaultEnergyProfile() EnergyProfile { return energy.DefaultProfile() }

// DefaultDeviceCostModel reports the calibrated embedded-CPU costs.
func DefaultDeviceCostModel() DeviceCostModel { return device.DefaultCostModel() }

// Host interface standards.
var (
	SATA2   = hostif.SATA2
	SATA3   = hostif.SATA3
	SAS6    = hostif.SAS6
	SAS12   = hostif.SAS12
	PCIe2x4 = hostif.PCIe2x4
	PCIe3x4 = hostif.PCIe3x4
)

// BandwidthTrend reports the Figure 1 series: host-interface versus
// SSD-internal bandwidth by year.
func BandwidthTrend() []hostif.TrendPoint { return hostif.Trend() }

// MeasureBandwidth probes a device's sequential-read bandwidth the way
// Table 2 does, returning internal and host MB/s.
func MeasureBandwidth(d *ssd.Device) (internal, host float64, err error) {
	p := ssd.BandwidthProbe{}
	if internal, err = p.Internal(d); err != nil {
		return 0, 0, err
	}
	host, err = p.Host(d)
	return internal, host, err
}

// Fault-injection and graceful-degradation re-exports. Set
// Config.SSD.Fault (any non-zero rate arms the injector) to exercise
// the degradation ladder: FTL read-retry and bad-block remapping,
// bounded device-retry with virtual-time backoff, and transparent host
// fallback — all deterministic for a fixed FaultConfig.Seed.
type (
	// FaultConfig sets per-site fault rates for the simulated device.
	FaultConfig = fault.Config
	// FaultStats counts injected faults by site.
	FaultStats = fault.Stats
	// FaultReport is one run's retry/fallback/recovery accounting
	// (Result.Faults).
	FaultReport = core.FaultReport
	// PartialResultError reports cluster partitions lost after
	// replica failover was exhausted.
	PartialResultError = core.PartialResultError
)

// Typed fault sentinels, for errors.Is against run and protocol errors.
var (
	// ErrPartialResult matches a cluster run that lost partitions.
	ErrPartialResult = core.ErrPartialResult
	// ErrSessionAborted matches a device session killed mid-query.
	ErrSessionAborted = device.ErrSessionAborted
	// ErrDeviceTimeout matches a GET that exceeded its deadline.
	ErrDeviceTimeout = device.ErrDeviceTimeout
	// ErrDeviceFailed matches a whole-device failure.
	ErrDeviceFailed = device.ErrDeviceFailed
	// ErrGrantDenied matches a refused device-memory grant.
	ErrGrantDenied = device.ErrGrantDenied
	// ErrUncorrectable matches a flash read whose data was lost beyond
	// ECC and read-retry.
	ErrUncorrectable = nand.ErrUncorrectable
)

// Tracing and metrics re-exports. Attach a TraceRecorder with
// System.SetRecorder to capture a run's full event timeline and export
// it as a Chrome trace_event file (chrome://tracing, Perfetto); read
// Result.Resources for the always-on per-resource utilization report.
// Both are strictly observational: with no recorder attached the
// simulator allocates nothing extra, and enabling one never perturbs
// virtual time.
type (
	// TraceEvent is one served request's record, delivered to a
	// per-request hook installed with System.SetTracer.
	TraceEvent = sim.TraceEvent
	// TraceRecord is one recorded event: a served request or an
	// OPEN/GET/CLOSE protocol span.
	TraceRecord = trace.Event
	// TraceRecorder accumulates TraceRecords across runs and writes
	// Chrome trace_event JSON.
	TraceRecorder = trace.Recorder
	// ResourceReport is a run's per-resource utilization summary
	// (Result.Resources).
	ResourceReport = metrics.Report
	// ResourceStat is one resource row of a ResourceReport.
	ResourceStat = metrics.Resource
	// PhaseStat is one protocol phase's latency aggregate.
	PhaseStat = metrics.Phase
)

// NewTraceRecorder returns an empty event recorder for
// System.SetRecorder.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// SetClause assigns one column in an Update.
type SetClause = core.SetClause

// OrderKey sorts a result by one output-schema column.
type OrderKey = plan.OrderKey

// LoadImage builds a System from a system image previously written with
// System.SaveImage; the image's device parameters override cfg.SSD.
func LoadImage(cfg Config, r io.Reader) (*System, error) { return core.LoadImage(cfg, r) }
