package smartssd_test

import (
	"fmt"
	"log"

	"smartssd"
	"smartssd/workload"
)

// Example builds the paper's testbed, loads a small TPC-H LINEITEM, and
// lets the planner choose where Q6 runs.
func Example() {
	sys, err := smartssd.New(smartssd.Config{})
	if err != nil {
		log.Fatal(err)
	}
	li := workload.LineitemSchema()
	const sf = 0.002 // 12,000 rows
	if _, err := sys.CreateTable("lineitem", li, smartssd.PAX,
		workload.NumLineitem(sf)/51+2, smartssd.OnSSD); err != nil {
		log.Fatal(err)
	}
	if err := sys.Load("lineitem", workload.LineitemGen(sf, 1)); err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(smartssd.QuerySpec{
		Table:          "lineitem",
		Filter:         workload.Q6Predicate(),
		Aggs:           workload.Q6Aggregates(),
		EstSelectivity: workload.Q6EstSelectivity,
	}, smartssd.Auto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran on %v, %d result row, bottleneck %s\n",
		res.Placement, len(res.Rows), res.Bottleneck)
	// Output: ran on device, 1 result row, bottleneck device-cpu
}

// ExampleSystem_Explain shows both candidate plans and the cost-based
// pushdown decision without running anything.
func ExampleSystem_Explain() {
	sys, err := smartssd.New(smartssd.Config{})
	if err != nil {
		log.Fatal(err)
	}
	s := smartssd.NewSchema(
		smartssd.Column{Name: "k", Kind: smartssd.Int64},
		smartssd.Column{Name: "v", Kind: smartssd.Int32},
		smartssd.Column{Name: "pad", Kind: smartssd.Char, Len: 140},
	)
	if _, err := sys.CreateTable("t", s, smartssd.PAX, 64, smartssd.OnSSD); err != nil {
		log.Fatal(err)
	}
	i := int64(0)
	if err := sys.Load("t", func() (smartssd.Tuple, bool) {
		if i >= 1000 {
			return nil, false
		}
		tup := smartssd.Tuple{smartssd.IntVal(i), smartssd.IntVal(i % 7), smartssd.StrVal("x")}
		i++
		return tup, true
	}); err != nil {
		log.Fatal(err)
	}
	out, err := sys.Explain(smartssd.QuerySpec{
		Table:          "t",
		Filter:         smartssd.EQ(smartssd.ColOf(s, "v"), smartssd.Int(3)),
		Aggs:           []smartssd.AggSpec{{Kind: smartssd.Count, Name: "n"}},
		EstSelectivity: 0.14,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out[:10]) // the header; full plans are device-parameter dependent
	// Output: host plan:
}

// ExampleSystem_Run_forced compares the same query on both paths; the
// answers are bit-identical by construction.
func ExampleSystem_Run_forced() {
	sys, err := smartssd.New(smartssd.Config{})
	if err != nil {
		log.Fatal(err)
	}
	s := smartssd.NewSchema(
		smartssd.Column{Name: "k", Kind: smartssd.Int64},
		smartssd.Column{Name: "grp", Kind: smartssd.Int32},
	)
	if _, err := sys.CreateTable("t", s, smartssd.NSM, 64, smartssd.OnSSD); err != nil {
		log.Fatal(err)
	}
	i := int64(0)
	if err := sys.Load("t", func() (smartssd.Tuple, bool) {
		if i >= 10000 {
			return nil, false
		}
		tup := smartssd.Tuple{smartssd.IntVal(i), smartssd.IntVal(i % 3)}
		i++
		return tup, true
	}); err != nil {
		log.Fatal(err)
	}
	q := smartssd.QuerySpec{
		Table:   "t",
		GroupBy: []int{1},
		Aggs:    []smartssd.AggSpec{{Kind: smartssd.Count, Name: "n"}},
		OrderBy: []smartssd.OrderKey{{Col: 0}},
	}
	host, _ := sys.Run(q, smartssd.ForceHost)
	dev, _ := sys.Run(q, smartssd.ForceDevice)
	for i := range host.Rows {
		fmt.Printf("group %d: host %d device %d\n",
			host.Rows[i][0].Int, host.Rows[i][1].Int, dev.Rows[i][1].Int)
	}
	// Output:
	// group 0: host 3334 device 3334
	// group 1: host 3333 device 3333
	// group 2: host 3333 device 3333
}
