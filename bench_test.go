// Benchmarks regenerating every table and figure of the paper's
// evaluation (reported as custom metrics on top of the usual ns/op),
// plus ablations of the design choices DESIGN.md calls out.
//
// The interesting numbers are the custom metrics: simulated speedups
// (x_speedup), bandwidths (MBps_*), and energy ratios (x_energy) — the
// ns/op column measures simulator wall-clock cost, not the modeled
// system.
package smartssd

import (
	"fmt"
	"math/rand"
	"testing"

	"smartssd/internal/core"
	"smartssd/internal/experiments"
	"smartssd/internal/sim"
	"smartssd/internal/ssd"
	"smartssd/internal/tpch"
)

func benchOptions() experiments.Options {
	return experiments.Options{SF: 0.01, SynthR: 400, Seed: 1}
}

// BenchmarkFig1BandwidthTrend regenerates Figure 1.
func BenchmarkFig1BandwidthTrend(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1()
		last = r.Points[len(r.Points)-1].InternalRel()
	}
	b.ReportMetric(last, "x_internal_2016")
}

// BenchmarkTable2SeqRead regenerates Table 2: sequential read bandwidth
// with 256 KB I/Os, internal versus host path.
func BenchmarkTable2SeqRead(b *testing.B) {
	var rep experiments.Table2Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.Table2(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.HostMBps, "MBps_host")
	b.ReportMetric(rep.InternalMBps, "MBps_internal")
	b.ReportMetric(rep.Ratio, "x_ratio")
}

// BenchmarkFig3Q6 regenerates Figure 3: TPC-H Q6 elapsed time.
func BenchmarkFig3Q6(b *testing.B) {
	var rep experiments.Fig3Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.Fig3(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Runs[1].Speedup, "x_speedup_nsm")
	b.ReportMetric(rep.Runs[2].Speedup, "x_speedup_pax")
}

// BenchmarkFig5JoinSelectivity regenerates Figure 5: the join query
// across the selectivity sweep.
func BenchmarkFig5JoinSelectivity(b *testing.B) {
	var rep experiments.Fig5Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.Fig5(benchOptions(), nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Points[0].SpeedupPAX, "x_speedup_sel1")
	b.ReportMetric(rep.Points[len(rep.Points)-1].SpeedupPAX, "x_speedup_sel100")
}

// BenchmarkFig7Q14 regenerates Figure 7: TPC-H Q14 elapsed time.
func BenchmarkFig7Q14(b *testing.B) {
	var rep experiments.Fig7Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.Fig7(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Runs[1].Speedup, "x_speedup_nsm")
	b.ReportMetric(rep.Runs[2].Speedup, "x_speedup_pax")
}

// BenchmarkTable3Energy regenerates Table 3: Q6 energy across devices.
func BenchmarkTable3Energy(b *testing.B) {
	var rep experiments.Table3Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.Table3(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.HDDSystemRatio, "x_energy_hdd")
	b.ReportMetric(rep.SSDSystemRatio, "x_energy_ssd")
	b.ReportMetric(rep.HDDIORatio, "x_io_energy_hdd")
	b.ReportMetric(rep.SSDIORatio, "x_io_energy_ssd")
}

// --- Ablations ---

// q6PaxSpeedup runs Figure 3 under modified device parameters and
// reports the Smart SSD (PAX) speedup.
func q6PaxSpeedup(b *testing.B, mutate func(*ssd.Params)) float64 {
	b.Helper()
	o := benchOptions()
	p := ssd.DefaultParams()
	mutate(&p)
	o.SSD = p
	rep, err := experiments.Fig3(o)
	if err != nil {
		b.Fatal(err)
	}
	return rep.Runs[2].Speedup
}

// BenchmarkAblationDMABus lifts the shared-DMA-bus serialization — the
// bottleneck the paper blames for 2.8x instead of Figure 1's 10x — by
// widening the bus. The embedded CPU is doubled to 6 cores so compute
// is not the binding constraint: at the stock 1,560 MB/s the speedup
// pins at the 2.8x bus ceiling, and widening the bus hands the
// bottleneck to the next stage in line — the 8x200 MB/s flash channels
// at about 2.9x — exactly the layered-bottleneck story of §4.2.
func BenchmarkAblationDMABus(b *testing.B) {
	for _, mbps := range []float64{1560, 3120, 6240} {
		b.Run(fmt.Sprintf("dma_%.0fMBps", mbps), func(b *testing.B) {
			var sp float64
			for i := 0; i < b.N; i++ {
				sp = q6PaxSpeedup(b, func(p *ssd.Params) {
					p.DMABusRate = sim.MBps(mbps)
					p.DeviceCPUCores = 6
				})
			}
			b.ReportMetric(sp, "x_speedup_pax")
		})
	}
}

// BenchmarkAblationDeviceCPU is the paper's §5 recommendation — "add in
// more hardware (CPU...) so that the DBMS code can run more effectively
// inside the SSD" — as a core-count sweep. Q6 is device-CPU-bound, so
// speedup grows with cores until the DMA bus (2.8x) caps it.
func BenchmarkAblationDeviceCPU(b *testing.B) {
	for _, cores := range []int{1, 3, 6, 12} {
		b.Run(fmt.Sprintf("cores_%d", cores), func(b *testing.B) {
			var sp float64
			for i := 0; i < b.N; i++ {
				sp = q6PaxSpeedup(b, func(p *ssd.Params) { p.DeviceCPUCores = cores })
			}
			b.ReportMetric(sp, "x_speedup_pax")
		})
	}
}

// BenchmarkAblationLayout isolates the NSM-versus-PAX gap for Q6 on the
// device: the per-field extraction penalty NSM pays per referenced
// column.
func BenchmarkAblationLayout(b *testing.B) {
	var rep experiments.Fig3Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.Fig3(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	nsm := rep.Runs[1].Elapsed.Seconds()
	pax := rep.Runs[2].Elapsed.Seconds()
	b.ReportMetric(nsm/pax, "x_pax_over_nsm")
}

// BenchmarkAblationSelectivity measures the host-link crossover of the
// join query: the selectivity where result shipping erases the
// pushdown advantage (Figure 5's right edge).
func BenchmarkAblationSelectivity(b *testing.B) {
	var rep experiments.Fig5Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.Fig5(benchOptions(), []int64{1, 25, 50, 75, 100})
		if err != nil {
			b.Fatal(err)
		}
	}
	cross := float64(100)
	for _, p := range rep.Points {
		if p.SpeedupPAX < 1.0 {
			cross = float64(p.SelectivityPct)
			break
		}
	}
	b.ReportMetric(cross, "pct_crossover")
}

// BenchmarkAblationOptimizer compares the Auto planner against both
// forced modes across the Q6 workload: Auto must match the better of
// the two (the cost model picks the winning side).
func BenchmarkAblationOptimizer(b *testing.B) {
	o := benchOptions()
	var auto, best float64
	for i := 0; i < b.N; i++ {
		e, err := core.New(core.Config{SSD: o.SSD})
		if err != nil {
			b.Fatal(err)
		}
		li := tpch.LineitemSchema()
		if _, err := e.CreateTable("lineitem", li, 1 /* PAX */, tpch.NumLineitem(o.SF)/51+2, core.OnSSD); err != nil {
			b.Fatal(err)
		}
		if err := e.Load("lineitem", tpch.NewLineitemGen(o.SF, o.Seed).Next); err != nil {
			b.Fatal(err)
		}
		spec := core.QuerySpec{
			Table:          "lineitem",
			Filter:         tpch.Q6Predicate(),
			Aggs:           tpch.Q6Aggregates(),
			EstSelectivity: 0.006,
		}
		ra, err := e.Run(spec, core.Auto)
		if err != nil {
			b.Fatal(err)
		}
		rh, err := e.Run(spec, core.ForceHost)
		if err != nil {
			b.Fatal(err)
		}
		rd, err := e.Run(spec, core.ForceDevice)
		if err != nil {
			b.Fatal(err)
		}
		auto = ra.Elapsed.Seconds()
		best = rh.Elapsed.Seconds()
		if rd.Elapsed.Seconds() < best {
			best = rd.Elapsed.Seconds()
		}
	}
	b.ReportMetric(auto/best, "x_auto_vs_best")
}

// BenchmarkDevicePushdownThroughput measures the simulator itself: how
// many simulated megabytes per wall-clock second the in-device scan
// path processes (useful when sizing SF for long runs).
func BenchmarkDevicePushdownThroughput(b *testing.B) {
	o := benchOptions()
	e, err := core.New(core.Config{SSD: o.SSD})
	if err != nil {
		b.Fatal(err)
	}
	li := tpch.LineitemSchema()
	if _, err := e.CreateTable("lineitem", li, 1, tpch.NumLineitem(o.SF)/51+2, core.OnSSD); err != nil {
		b.Fatal(err)
	}
	if err := e.Load("lineitem", tpch.NewLineitemGen(o.SF, o.Seed).Next); err != nil {
		b.Fatal(err)
	}
	spec := core.QuerySpec{
		Table:          "lineitem",
		Filter:         tpch.Q6Predicate(),
		Aggs:           tpch.Q6Aggregates(),
		EstSelectivity: 0.006,
	}
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(spec, core.ForceDevice)
		if err != nil {
			b.Fatal(err)
		}
		bytes += res.FlashBytesRead
	}
	b.SetBytes(bytes / int64(b.N))
}

// BenchmarkAblationIOUnit sweeps the host I/O request size: small
// units pay per-command link turnaround, peaking near the paper's
// 550 MB/s at the 32-page (256 KB) unit the experiments use; very
// large units lose a little again because each request waits for its
// whole batch to stage in device DRAM before the link starts.
func BenchmarkAblationIOUnit(b *testing.B) {
	for _, unit := range []int{4, 8, 32, 128} {
		b.Run(fmt.Sprintf("pages_%d", unit), func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				p := ssd.DefaultParams()
				p.IOUnitPages = unit
				dev, err := ssd.New(p)
				if err != nil {
					b.Fatal(err)
				}
				bw, err = ssd.BandwidthProbe{}.Host(dev)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(bw, "MBps_host")
		})
	}
}

// BenchmarkAblationOverProvision sweeps FTL over-provisioning under a
// random-overwrite churn and reports the resulting write amplification
// — the device-lifetime cost of the capacity the vendor hides.
func BenchmarkAblationOverProvision(b *testing.B) {
	for _, op := range []float64{0.10, 0.25, 0.40} {
		b.Run(fmt.Sprintf("op_%.0f%%", op*100), func(b *testing.B) {
			var wa float64
			for i := 0; i < b.N; i++ {
				p := ssd.DefaultParams()
				p.Geometry.BlocksPerChip = 16
				p.Geometry.PagesPerBlock = 32
				p.FTL.OverProvision = op
				dev, err := ssd.New(p)
				if err != nil {
					b.Fatal(err)
				}
				n := dev.CapacityPages()
				buf := make([]byte, dev.PageSize())
				rng := rand.New(rand.NewSource(1))
				for j := int64(0); j < n; j++ {
					if _, err := dev.WritePage(j, buf, 0); err != nil {
						b.Fatal(err)
					}
				}
				for j := int64(0); j < 3*n; j++ {
					if _, err := dev.WritePage(rng.Int63n(n), buf, 0); err != nil {
						b.Fatal(err)
					}
				}
				wa = dev.FTLStats().WriteAmplification
			}
			b.ReportMetric(wa, "x_write_amp")
		})
	}
}
