#!/usr/bin/env sh
# Record the service-level load benchmark: sessions/sec and p50/p99
# simulated latency versus offered load, Zipf-skewed tenants, engine
# and cluster backends. Runs cmd/loadgen and writes BENCH_serve.json
# (via cmd/benchjson) at the repo root.
#
# Loadgen is deterministic — same flags, same bytes — so the output is
# committed, and CI verifies two same-seed runs stay byte-identical.
#
# Usage: scripts/bench_serve.sh [output.json]
#   LOADGEN_FLAGS="-sessions 5000" scripts/bench_serve.sh   # bigger replay
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_serve.json}"
BENCH_NOTES="${BENCH_NOTES:-virtual-time load benchmark: open loop sheds past saturation (engine ~440/s at 4 workers), closed loop plateaus at the worker count; latencies are simulated, so points are machine-independent}"
export BENCH_NOTES

# shellcheck disable=SC2086  # LOADGEN_FLAGS is intentionally word-split
go run ./cmd/loadgen ${LOADGEN_FLAGS:-} |
	tee /dev/stderr |
	go run ./cmd/benchjson >"$out"

echo "wrote $out" >&2
