#!/usr/bin/env sh
# Record the benchmark baseline for the parallel run harness and the
# executor hot path. Runs the wall-clock and allocs/op suites and writes
# BENCH_baseline.json (via cmd/benchjson) at the repo root.
#
# Usage: scripts/bench_baseline.sh [output.json]
#   BENCHTIME=5x scripts/bench_baseline.sh   # more iterations, steadier numbers
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_baseline.json}"
benchtime="${BENCHTIME:-2x}"
# Pre-optimization allocs/op, for the record: the arena + boxing work cut
# host Q6 from 80055, device Q6 from 68465, host Q14 from 119489; the
# vectorized executor then cut host Q6 from 1654 (7.58 ms) and host Q14
# from 3775, and device Q6 from 6.77 ms at 1200 allocs.
# The suite benchmark measures steady state: bases loaded and workers
# cloned once, two unmeasured warm-up passes, then timed passes that
# reuse warm workers via Engine.ResetForRun on a static schedule (job i
# on worker i mod workers), so par_1 and par_N run identical per-pass
# work. Before clone reuse, par_4 carried 979 MB/op vs par_1's 654.
BENCH_NOTES="${BENCH_NOTES:-steady-state passes on warm reused workers, vectorized executor default; pre-arena allocs/op: host Q6 80055, device Q6 68465, host Q14 119489; pre-vectorization: host Q6 1654 allocs / 7583925 ns, device Q6 1200 / 6772388, host Q14 3775 / 11632438, suite ns/op par_1 1687253897, par_2 1650627006, par_4 1392332699; pre-reuse suite B/op: par_1 654427408, par_4 979279584; suite speedup is meaningful on 4+ cores only}"
export BENCH_NOTES

go test -run '^$' \
	-bench 'BenchmarkSuiteWallClock|BenchmarkHostQ6Allocs|BenchmarkDeviceQ6Allocs|BenchmarkHostQ14Allocs' \
	-benchmem -benchtime "$benchtime" . |
	tee /dev/stderr |
	go run ./cmd/benchjson >"$out"

echo "wrote $out" >&2
